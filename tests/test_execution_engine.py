"""Tests for the execution engine."""

import pytest

from repro.behavior.models import Bernoulli, LoopTrip
from repro.errors import ExecutionError
from repro.execution.engine import ExecutionEngine
from repro.execution.stack import CallStack
from repro.program.builder import ProgramBuilder


class TestCallStack:
    def test_push_pop(self, straight_line_program):
        block = straight_line_program.blocks[0]
        stack = CallStack()
        stack.push(block)
        assert stack.depth == 1
        assert stack.pop() is block
        assert stack.pop() is None

    def test_overflow_raises(self, straight_line_program):
        block = straight_line_program.blocks[0]
        stack = CallStack(max_depth=2)
        stack.push(block)
        stack.push(block)
        with pytest.raises(ExecutionError, match="overflow"):
            stack.push(block)

    def test_bad_depth_rejected(self):
        with pytest.raises(ExecutionError):
            CallStack(max_depth=0)


class TestStraightLine:
    def test_executes_blocks_in_order(self, straight_line_program):
        steps = ExecutionEngine(straight_line_program).run_to_list()
        assert [s.block.label for s in steps] == ["A", "B", "C"]

    def test_fallthrough_steps_not_taken(self, straight_line_program):
        steps = ExecutionEngine(straight_line_program).run_to_list()
        assert not steps[0].taken
        assert steps[0].target.label == "B"

    def test_halt_has_no_target(self, straight_line_program):
        steps = ExecutionEngine(straight_line_program).run_to_list()
        assert steps[-1].target is None

    def test_instruction_accounting(self, straight_line_program):
        engine = ExecutionEngine(straight_line_program)
        list(engine.run())
        assert engine.steps_executed == 3
        assert engine.instructions_executed == 6


class TestLoops:
    def test_loop_executes_expected_iterations(self, simple_loop_program):
        steps = ExecutionEngine(simple_loop_program).run_to_list()
        head_executions = sum(1 for s in steps if s.block.label == "head")
        assert head_executions == 100

    def test_back_edge_is_taken_and_backward(self, simple_loop_program):
        steps = ExecutionEngine(simple_loop_program).run_to_list()
        first = steps[0]
        assert first.taken
        assert first.is_backward

    def test_loop_exit_falls_through(self, simple_loop_program):
        steps = ExecutionEngine(simple_loop_program).run_to_list()
        exit_step = steps[-2]
        assert exit_step.block.label == "head"
        assert not exit_step.taken
        assert exit_step.target.label == "done"

    def test_nested_loop_counts(self, nested_loop_program):
        steps = ExecutionEngine(nested_loop_program).run_to_list()
        counts = {}
        for step in steps:
            counts[step.block.label] = counts.get(step.block.label, 0) + 1
        assert counts["A"] == 50
        assert counts["C"] == 50
        assert counts["B"] == 50 * 10


class TestCallsAndReturns:
    def test_call_pushes_and_return_resumes(self, call_loop_program):
        steps = ExecutionEngine(call_loop_program).run_to_list()
        labels = [s.block.label for s in steps]
        # helper lays out first (lower addresses) but main is the entry;
        # one loop iteration is A B E F D.
        assert labels[:5] == ["A", "B", "E", "F", "D"]

    def test_return_from_entry_ends_program(self):
        pb = ProgramBuilder("retend")
        main = pb.procedure("main")
        main.block("A", insts=2).ret()
        program = pb.build()
        steps = ExecutionEngine(program).run_to_list()
        assert len(steps) == 1
        assert steps[0].taken
        assert steps[0].target is None

    def test_call_return_pairing(self, call_loop_program):
        steps = ExecutionEngine(call_loop_program).run_to_list()
        for index, step in enumerate(steps):
            if step.block.label == "B" and step.taken:
                # call lands at helper entry...
                assert step.target.label == "E"
                # ...and two steps later F returns to D.
                assert steps[index + 2].block.label == "F"
                assert steps[index + 2].target.label == "D"
                break
        else:
            pytest.fail("no call to helper observed")

    def test_runaway_recursion_raises(self):
        pb = ProgramBuilder("recurse")
        rec = pb.procedure("rec")
        rec.block("top", insts=1).call("rec")
        rec.block("after", insts=1).ret()
        program = pb.build()
        engine = ExecutionEngine(program, max_call_depth=64)
        with pytest.raises(ExecutionError, match="overflow"):
            list(engine.run())


class TestDeterminismAndLimits:
    def test_same_seed_reproduces_stream(self, diamond_program):
        first = ExecutionEngine(diamond_program, seed=42).run_to_list()
        second = ExecutionEngine(diamond_program, seed=42).run_to_list()
        assert [(s.block, s.taken) for s in first] == [
            (s.block, s.taken) for s in second
        ]

    def test_different_seed_changes_unbiased_choices(self, diamond_program):
        first = ExecutionEngine(diamond_program, seed=1).run_to_list()
        second = ExecutionEngine(diamond_program, seed=2).run_to_list()
        assert [(s.block, s.taken) for s in first] != [
            (s.block, s.taken) for s in second
        ]

    def test_max_steps_truncates(self, simple_loop_program):
        engine = ExecutionEngine(simple_loop_program, max_steps=10)
        steps = engine.run_to_list()
        assert len(steps) == 10

    def test_abandoned_generator_reports_consumed_steps(
        self, simple_loop_program
    ):
        engine = ExecutionEngine(simple_loop_program, seed=1)
        # A completed run first, so stale counters from it would be
        # visible if a later partial run failed to overwrite them.
        total = sum(1 for _ in engine.run())
        assert engine.steps_executed == total

        stream = engine.run()
        consumed = [next(stream) for _ in range(5)]
        stream.close()
        assert engine.steps_executed == 5
        assert engine.instructions_executed == sum(
            step.block.bundle.count for step in consumed
        )

    def test_run_into_counts_match_generator(self, simple_loop_program):
        reference = ExecutionEngine(simple_loop_program, seed=1)
        reference.run_to_list()
        pushed = ExecutionEngine(simple_loop_program, seed=1)
        count = pushed.run_into(lambda block, taken, target: None)
        assert count == reference.steps_executed
        assert pushed.steps_executed == reference.steps_executed
        assert pushed.instructions_executed == reference.instructions_executed

    def test_unfinalized_program_rejected(self):
        pb = ProgramBuilder("raw")
        main = pb.procedure("main")
        main.block("A").halt()
        # Bypass build() to get an unfinalized program.
        from repro.program.program import Program

        program = Program("never_finalized")
        with pytest.raises(ExecutionError):
            ExecutionEngine(program)

    def test_indirect_dispatch(self):
        pb = ProgramBuilder("switchy")
        main = pb.procedure("main")
        main.block("top", insts=1).cond("dispatch", model=LoopTrip(50))
        main.block("exit", insts=1).halt()
        main.block("dispatch", insts=2).indirect({"case_a": 0.5, "case_b": 0.5})
        main.block("case_a", insts=3).jump("top")
        main.block("case_b", insts=4).jump("top")
        program = pb.build()
        steps = ExecutionEngine(program, seed=9).run_to_list()
        labels = {s.block.label for s in steps}
        assert "case_a" in labels and "case_b" in labels
