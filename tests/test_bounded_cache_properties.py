"""Property-based tests for the bounded code cache."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.codecache import BoundedCodeCache
from repro.cache.region import TraceRegion
from repro.cache.sizing import STUB_BYTES
from repro.program.builder import ProgramBuilder


@pytest.fixture(scope="module")
def block_pool():
    pb = ProgramBuilder("pool")
    main = pb.procedure("main")
    for i in range(24):
        main.block(f"b{i}", insts=1 + i % 5)
    main.block("end", insts=1).halt()
    program = pb.build()
    return [program.block_by_full_label(f"main:b{i}") for i in range(24)]


COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


class TestBoundedCacheProperties:
    @COMMON
    @given(
        capacity=st.integers(20, 400),
        policy=st.sampled_from(["flush", "fifo"]),
        inserts=st.lists(st.integers(0, 23), min_size=1, max_size=60),
    )
    def test_invariants_hold_under_any_insert_sequence(
        self, block_pool, capacity, policy, inserts
    ):
        cache = BoundedCodeCache(capacity, policy)
        inserted = 0
        for index in inserts:
            block = block_pool[index]
            if cache.contains_entry(block):
                continue  # single-entry invariant: skip duplicates
            region = TraceRegion([block])
            size = region.instruction_bytes + STUB_BYTES * region.exit_stub_count
            cache.insert(region)
            inserted += 1

            # Capacity respected unless a single region exceeds it.
            if size <= capacity:
                assert cache.resident_bytes <= capacity
            # The newest region is always resident.
            assert cache.contains_entry(block)
            # Residency is a subset of everything selected.
            assert cache.resident_count <= cache.region_count
            # Work is never forgotten.
            assert cache.region_count == inserted
            # Selection order is strictly increasing and dense.
            orders = [r.selection_order for r in cache.regions]
            assert orders == list(range(inserted))
            # Eviction bookkeeping is self-consistent.
            assert cache.evictions == inserted - cache.resident_count
            # Layout addresses never overlap (monotonic allocation).
            addresses = [r.cache_address for r in cache.regions]
            assert addresses == sorted(addresses)
            assert len(set(addresses)) == len(addresses)

    @COMMON
    @given(
        capacity=st.integers(30, 200),
        rounds=st.integers(2, 6),
    )
    def test_regenerations_count_reselections_exactly(
        self, block_pool, capacity, rounds
    ):
        cache = BoundedCodeCache(capacity, "fifo")
        reinserts = 0
        for _ in range(rounds):
            for block in block_pool[:8]:
                if cache.contains_entry(block):
                    continue
                was_evicted = block in cache._ever_evicted
                cache.insert(TraceRegion([block]))
                if was_evicted:
                    reinserts += 1
        assert cache.regenerations == reinserts
