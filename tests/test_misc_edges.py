"""Miscellaneous edge cases across the library surface."""

import pytest

from repro.behavior.models import Bernoulli, DecisionContext, PhaseShift
from repro.behavior.rng import SplitMix64
from repro.config import SystemConfig
from repro.errors import ConfigError, ProgramStructureError
from repro.execution.events import Step
from repro.isa.opcodes import BranchKind
from repro.program.builder import ProgramBuilder
from repro.program.cfg import Terminator


class TestStepProperties:
    def test_backward_requires_taken(self, simple_loop_program):
        head = simple_loop_program.block_by_full_label("main:head")
        taken = Step(head, True, head)
        fall = Step(head, False, head)
        assert taken.is_backward
        assert not fall.is_backward

    def test_halt_step_has_no_target_address(self, straight_line_program):
        c = straight_line_program.block_by_full_label("main:C")
        step = Step(c, False, None)
        assert step.tgt_address is None
        assert not step.is_backward

    def test_src_address_is_block_end(self, straight_line_program):
        a = straight_line_program.block_by_full_label("main:A")
        step = Step(a, False, a.fallthrough)
        assert step.src_address == a.end_address


class TestBlockAtAddress:
    def test_every_block_byte_resolves(self, call_loop_program):
        for block in call_loop_program.blocks:
            assert call_loop_program.block_at_address(block.address) is block
            assert call_loop_program.block_at_address(block.end_address) is block
            middle = (block.address + block.end_address) // 2
            assert call_loop_program.block_at_address(middle) is block

    def test_padding_gap_rejected(self, call_loop_program):
        # The inter-procedure padding bytes belong to no block.
        helper_last = call_loop_program.block_by_full_label("helper:F")
        with pytest.raises(ProgramStructureError, match="outside"):
            call_loop_program.block_at_address(helper_last.end_address + 1)

    def test_before_image_rejected(self, call_loop_program):
        with pytest.raises(ProgramStructureError):
            call_loop_program.block_at_address(0)


class TestConfigSurface:
    def test_with_overrides_returns_new_config(self):
        base = SystemConfig()
        derived = base.with_overrides(net_threshold=10)
        assert derived.net_threshold == 10
        assert base.net_threshold == 50

    def test_config_is_hashable(self):
        assert hash(SystemConfig()) == hash(SystemConfig())
        assert SystemConfig() != SystemConfig(net_threshold=10)

    @pytest.mark.parametrize("field", [
        "net_threshold", "lei_threshold", "history_buffer_size",
        "max_trace_blocks", "max_trace_instructions", "combine_t_prof",
        "combined_net_t_start", "combined_lei_t_start", "stub_bytes",
        "mojo_exit_threshold", "boa_threshold", "sampling_period",
        "sampling_window",
    ])
    def test_every_threshold_validated(self, field):
        with pytest.raises(ConfigError, match=field):
            SystemConfig(**{field: 0})


class TestTerminatorSurface:
    def test_repr_of_direct_and_indirect(self):
        direct = Terminator(BranchKind.JUMP, "target")
        indirect = Terminator(BranchKind.INDIRECT, indirect_refs=("a", "b"))
        assert "jump" in repr(direct)
        assert "indirect" in repr(indirect)
        assert "a" in repr(indirect)

    def test_validator_catches_direct_target_on_return(self):
        pb = ProgramBuilder("badret")
        main = pb.procedure("main")
        handle = main.block("A", insts=1)
        # Bypass the builder: a RETURN must not carry a direct target.
        handle.raw_block.terminator = Terminator(BranchKind.RETURN, "A")
        main.block("B", insts=1).halt()
        with pytest.raises(ProgramStructureError, match="must not have"):
            pb.build()

    def test_validator_catches_indirect_without_model(self):
        pb = ProgramBuilder("badind")
        main = pb.procedure("main")
        handle = main.block("A", insts=1)
        handle.raw_block.terminator = Terminator(
            BranchKind.INDIRECT, indirect_refs=("B",)
        )
        main.block("B", insts=1).halt()
        with pytest.raises(ProgramStructureError, match="target-choice model"):
            pb.build()


class TestDecisionContextSharing:
    def test_models_do_not_leak_state_between_sites(self):
        model = PhaseShift([(10, 1.0), (10, 0.0)])
        ctx_a = DecisionContext(SplitMix64(1), {}, step=5)
        ctx_b = DecisionContext(SplitMix64(1), {}, step=15)
        assert model.next_taken(ctx_a)
        assert not model.next_taken(ctx_b)

    def test_bernoulli_boundary_probabilities(self):
        ctx = DecisionContext(SplitMix64(3), {}, 0)
        assert not any(Bernoulli(0.0).next_taken(ctx) for _ in range(100))
        assert all(Bernoulli(1.0).next_taken(ctx) for _ in range(100))


class TestDotEdgeKinds:
    def test_indirect_and_call_edges_styled(self):
        from repro.behavior.models import LoopTrip
        from repro.program.dot import program_to_dot

        pb = ProgramBuilder("dotty", entry="main")
        helper = pb.procedure("helper")
        helper.block("h", insts=1).ret()
        main = pb.procedure("main")
        main.block("top", insts=1).cond("disp", model=LoopTrip(3))
        main.block("out", insts=1).halt()
        main.block("disp", insts=1).indirect({"c1": 0.5, "c2": 0.5})
        main.block("c1", insts=1).call("helper")
        main.block("back1", insts=1).jump("top")
        main.block("c2", insts=1).jump("top")
        dot = program_to_dot(pb.build())
        assert "style=dashed" in dot    # call edge
        assert "style=dotted" in dot    # indirect edges
        assert 'label="T"' in dot       # conditional taken edge
