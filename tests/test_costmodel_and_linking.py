"""Tests for the execution-time cost model and the link metric."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.metrics import (
    CostModel,
    estimated_speedup,
    estimated_time,
    inter_region_links,
    interpreter_only_time,
)
from repro.system.simulator import simulate


@pytest.fixture
def fast_config():
    return SystemConfig(net_threshold=5, lei_threshold=4)


class TestCostModelValidation:
    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(region_transition=-1)

    def test_interpretation_cheaper_than_native_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(interpreted_instruction=0.5, cached_instruction=1.0)

    def test_defaults_valid(self):
        model = CostModel()
        assert model.interpreted_instruction > model.cached_instruction


class TestEstimatedTime:
    def test_no_selection_equals_interpreter_only(self, straight_line_program, fast_config):
        result = simulate(straight_line_program, "net", fast_config)
        assert estimated_time(result) == interpreter_only_time(result)
        assert estimated_speedup(result) == 1.0

    def test_hot_loop_speeds_up(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        assert estimated_speedup(result) > 2.0

    def test_components_priced(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "net", fast_config)
        free_transitions = CostModel(region_transition=0.0)
        dear_transitions = CostModel(region_transition=100.0)
        assert (estimated_time(result, dear_transitions)
                > estimated_time(result, free_transitions))

    def test_lei_estimated_faster_on_cycle_workload(self, call_loop_program, fast_config):
        """LEI removes two transitions per iteration here; the model
        must price that as a win."""
        net = simulate(call_loop_program, "net", fast_config)
        lei = simulate(call_loop_program, "lei", fast_config)
        assert estimated_time(lei) < estimated_time(net)


class TestCoverSetPredictsTime:
    def test_cover_set_ordering_matches_time_ordering(self, fast_config):
        """The paper's core metric argument: 'a smaller 90% cover set
        implied a smaller execution time' — check it holds inside the
        cost model across the paper's four selector configurations."""
        from repro.metrics import cover_set_size
        from repro.workloads import build_benchmark

        program = build_benchmark("mcf", scale=0.25)
        config = SystemConfig()
        runs = {
            selector: simulate(program, selector, config, seed=1)
            for selector in ("net", "lei", "combined-net", "combined-lei")
        }
        covers = {s: cover_set_size(r) for s, r in runs.items()}
        times = {s: estimated_time(r) for s, r in runs.items()}
        assert all(c is not None for c in covers.values())
        # Pairwise consistency: strictly smaller cover set must not have
        # strictly larger estimated time by more than 10% (ties and
        # near-ties are allowed; the claim is monotonicity in the large).
        for a in runs:
            for b in runs:
                if covers[a] < covers[b]:
                    assert times[a] <= times[b] * 1.10, (a, b)


class TestInterRegionLinks:
    def test_separated_traces_are_linked(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "net", fast_config)
        # Two traces bouncing between each other: at least 2 links.
        assert inter_region_links(result) >= 2

    def test_single_cycle_trace_needs_no_links(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "lei", fast_config)
        assert result.region_count == 1
        assert inter_region_links(result) == 0

    def test_no_regions_no_links(self, straight_line_program, fast_config):
        result = simulate(straight_line_program, "net", fast_config)
        assert inter_region_links(result) == 0

    def test_combination_reduces_links_footnote9(self):
        """Footnote 9: 'our algorithms are very likely to reduce the
        number of such links'."""
        from repro.workloads import build_benchmark

        program = build_benchmark("eon", scale=0.25)
        config = SystemConfig()
        plain = simulate(program, "net", config, seed=1)
        combined = simulate(program, "combined-net", config, seed=1)
        assert inter_region_links(combined) <= inter_region_links(plain)
