"""Tests for the experiment runner, figures and rendering."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.experiments.figures import ALL_FIGURES, FigureResult, compute_figure, figure_ids
from repro.experiments.render import figure_to_markdown, figure_to_text
from repro.experiments.runner import run_grid


@pytest.fixture(scope="module")
def tiny_grid():
    """A two-benchmark grid at very small scale (fast, still meaningful)."""
    return run_grid(
        scale=0.08,
        seed=1,
        benchmarks=("gzip", "mcf"),
    )


class TestRunner:
    def test_grid_has_all_cells(self, tiny_grid):
        assert set(tiny_grid.benchmarks) == {"gzip", "mcf"}
        assert set(tiny_grid.selectors) == {
            "net", "lei", "combined-net", "combined-lei",
        }
        assert len(tiny_grid.reports) == 8

    def test_reports_are_metric_reports(self, tiny_grid):
        report = tiny_grid.report("gzip", "net")
        assert report.program == "gzip"
        assert report.selector == "net"
        assert report.total_instructions > 0

    def test_selector_subset(self):
        grid = run_grid(scale=0.05, benchmarks=("bzip2",), selectors=("lei",))
        assert list(grid.reports) == [("bzip2", "lei")]

    def test_custom_config_respected(self):
        config = SystemConfig(net_threshold=500_000)  # never reached
        grid = run_grid(scale=0.05, benchmarks=("gzip",), selectors=("net",),
                        config=config)
        assert grid.report("gzip", "net").region_count == 0


class TestFigures:
    def test_registry_covers_every_paper_artefact(self):
        expected = {"fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
                    "fig16", "fig17", "fig18", "fig19"}
        assert expected <= set(figure_ids())

    @pytest.mark.parametrize("figure_id", sorted(ALL_FIGURES))
    def test_every_figure_computes(self, figure_id, tiny_grid):
        figure = compute_figure(figure_id, tiny_grid)
        assert isinstance(figure, FigureResult)
        assert len(figure.rows) == 2
        assert all(len(values) == len(figure.columns) for _, values in figure.rows)
        assert len(figure.means) == len(figure.columns)

    def test_unknown_figure_rejected(self, tiny_grid):
        with pytest.raises(ConfigError, match="unknown figure"):
            compute_figure("fig99", tiny_grid)

    def test_column_and_value_accessors(self, tiny_grid):
        figure = compute_figure("fig09", tiny_grid)
        assert len(figure.column("net")) == 2
        value = figure.value("gzip", "net")
        assert value is None or value >= 1
        with pytest.raises(ConfigError):
            figure.value("nonexistent", "net")

    def test_means_skip_undefined_cells(self):
        figure = FigureResult(
            "x", "t", ("a",),
            rows=(("b1", (None,)), ("b2", (2.0,))),
            paper_note="",
        )
        assert figure.means == (2.0,)

    def test_all_none_column_mean_is_none(self):
        figure = FigureResult(
            "x", "t", ("a",), rows=(("b1", (None,)),), paper_note="",
        )
        assert figure.means == (None,)


class TestRendering:
    def test_text_table_structure(self, tiny_grid):
        figure = compute_figure("fig08", tiny_grid)
        text = figure_to_text(figure)
        lines = text.splitlines()
        assert lines[0].startswith("Figure 8")
        assert "benchmark" in lines[1]
        assert any(line.startswith("gzip") for line in lines)
        assert any(line.startswith("mean") for line in lines)

    def test_markdown_table_structure(self, tiny_grid):
        figure = compute_figure("fig08", tiny_grid)
        md = figure_to_markdown(figure)
        assert md.startswith("### Figure 8")
        assert "| benchmark |" in md
        assert "| **mean** |" in md

    def test_none_rendered_as_dash(self):
        figure = FigureResult(
            "x", "Title", ("a",), rows=(("b", (None,)),), paper_note="note",
        )
        assert "-" in figure_to_text(figure)


class TestCLI:
    def test_main_single_figure(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["--scale", "0.05", "--figure", "fig09"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 9" in out

    def test_main_writes_markdown(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        target = tmp_path / "figs.md"
        main(["--scale", "0.05", "--figure", "fig10", "--markdown", str(target)])
        assert target.exists()
        assert "Figure 10" in target.read_text()

    def test_main_save_and_load_grid(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        grid_path = tmp_path / "grid.json"
        main(["--scale", "0.05", "--figure", "fig09",
              "--save-grid", str(grid_path)])
        first = capsys.readouterr().out
        assert grid_path.exists()
        main(["--load-grid", str(grid_path), "--figure", "fig09"])
        second = capsys.readouterr().out
        assert "grid loaded" in second
        # Same figure content either way.
        assert first.split("Figure 9")[1] == second.split("Figure 9")[1]

    def test_main_workers_flag_gives_identical_output(self, capsys):
        from repro.experiments.__main__ import main

        main(["--scale", "0.05", "--figure", "fig09"])
        serial = capsys.readouterr().out
        main(["--scale", "0.05", "--figure", "fig09", "--workers", "4"])
        parallel = capsys.readouterr().out
        assert serial.split("Figure 9")[1] == parallel.split("Figure 9")[1]
