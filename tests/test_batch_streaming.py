"""Streaming fleet scheduler tests (``run_fleet(max_lanes=...)``).

The streaming contract extends bit-identity to *admission schedules*:
per-cell reports are independent of queue order, ``max_lanes`` and
refill timing, memory stays bounded by the live-lane cap, and a
contained lane failure (``on_error="continue"``) frees its slot for
the next queued cell instead of aborting the fleet.  The oracle is
always the serial fused pipeline.  See ``docs/batching.md``.
"""

import os

import pytest

from repro.batch import (
    BatchCell,
    available_backends,
    build_fleet_program,
    run_fleet,
)
from repro.batch.lane import Lane
from repro.config import SystemConfig
from repro.errors import ConfigError, ExecutionError
from repro.metrics.summary import MetricReport
from repro.obs import CollectingSink, Observer
from repro.system.simulator import simulate

BACKENDS = available_backends()

#: A mixed pool — trace chains, a self loop, CFG regions, LEI and an
#: interp-heavy tail — so refills land lanes of every execution mode
#: into slots vacated by every other mode.
POOL = tuple(
    BatchCell(f"micro:{motif}", selector, scale=scale, seed=seed)
    for motif, selector, scale, seed in (
        ("linked_chain", "net", 0.15, 1),
        ("linked_chain", "net", 0.05, 2),
        ("self_loop", "net", 0.1, 1),
        ("figure3", "combined-net", 0.1, 1),
        ("alternating", "lei", 0.05, 1),
        ("figure2", "net", 0.05, 1),
        ("recursion", "net", 0.1, 1),
        ("linked_chain", "lei", 0.05, 3),
    )
)


def serial_report(cell, config=None):
    program = build_fleet_program(cell.benchmark, cell.scale)
    return MetricReport.from_result(
        simulate(program, cell.selector, config, seed=cell.seed)
    )


@pytest.fixture(scope="module")
def oracle():
    return {cell: serial_report(cell) for cell in POOL}


def fleet_observer():
    sink = CollectingSink(categories=("fleet",))
    return Observer(sink=sink), sink


class TestStreamingIdentity:
    """Reports never depend on the admission schedule."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_max_lanes_one_degenerates_to_serial_order(self, backend, oracle):
        """One live slot streams the queue strictly in cell order."""
        observer, sink = fleet_observer()
        fleet = run_fleet(POOL, backend=backend, max_lanes=1,
                          observer=observer)
        assert fleet.reports == oracle
        assert fleet.max_lanes == 1
        assert fleet.refills == len(POOL) - 1
        finished = [event for event in sink.events
                    if event.kind == "fleet_lane_finished"]
        assert [(e.get("benchmark"), e.get("selector"), e.get("seed"))
                for e in finished] == [
            (c.benchmark, c.selector, c.seed) for c in POOL]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("max_lanes", [2, 3, 5, None])
    def test_cap_and_queue_order_do_not_move_results(self, backend,
                                                     max_lanes, oracle):
        for cells in (POOL, tuple(reversed(POOL)), POOL[4:] + POOL[:4]):
            fleet = run_fleet(cells, backend=backend, max_lanes=max_lanes)
            assert fleet.reports == oracle
            expected = (0 if max_lanes is None or max_lanes >= len(cells)
                        else len(cells) - max_lanes)
            assert fleet.refills == expected

    def test_refill_events_account_for_every_cell(self):
        """Admission events carry consistent queue-progress counters."""
        observer, sink = fleet_observer()
        fleet = run_fleet(POOL, max_lanes=3, observer=observer)
        refills = [event for event in sink.events
                   if event.kind == "fleet_refill"]
        assert len(refills) == fleet.refills == len(POOL) - 3
        for event in refills:
            # Every cell is exactly one of settled / live / queued.
            assert (event.get("settled") + event.get("active")
                    + event.get("queued")) == len(POOL)
            assert 0 <= event.get("slot") < 3
        # The last admission drained the queue.
        assert refills[-1].get("queued") == 0
        settled = [event.get("settled") for event in refills]
        assert settled == sorted(settled)

    def test_max_lanes_validation(self):
        with pytest.raises(ConfigError):
            run_fleet(POOL, max_lanes=0)
        with pytest.raises(ConfigError):
            run_fleet(POOL, on_error="retry")


BAD = BatchCell("micro:self_loop", "net", scale=0.1, seed=77)


@pytest.fixture
def failing_lane(monkeypatch):
    """Make the lane for ``BAD`` raise on its first scalar pass."""
    orig = Lane.run_scalar

    def boom(self, quota):
        if self.cell.seed == BAD.seed:
            raise ExecutionError("injected lane failure")
        return orig(self, quota)

    monkeypatch.setattr(Lane, "run_scalar", boom)


class TestErrorContainment:
    """on_error='continue' refills an errored slot and streams on."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_admission_into_an_errored_slot(self, backend, oracle,
                                            failing_lane):
        cells = (BAD,) + POOL  # the failure occupies slot 0 first
        observer, sink = fleet_observer()
        fleet = run_fleet(cells, backend=backend, max_lanes=2,
                          on_error="continue", observer=observer)
        assert BAD in fleet.failures
        assert BAD not in fleet.reports
        assert fleet.errors == 1
        assert fleet.reports == oracle
        assert fleet.refills == len(cells) - 2
        # The errored slot was reused for a queued cell.
        refills = [event for event in sink.events
                   if event.kind == "fleet_refill"]
        assert any(event.get("slot") == 0 for event in refills)
        failed = [event for event in sink.events
                  if event.kind == "fleet_lane_failed"]
        assert len(failed) == 1
        assert failed[0].get("seed") == BAD.seed
        # The contained error carries the serial pipeline's context.
        error = fleet.failures[BAD]
        assert error.context["selector"] == "net"
        assert "injected lane failure" in str(error)

    def test_default_on_error_still_aborts(self, failing_lane):
        with pytest.raises(ExecutionError):
            run_fleet((BAD,) + POOL[:2], max_lanes=1)


class TestBoundedCacheStreaming:
    """Refill composes with bounded-cache eviction, bit-identically."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("policy", ["flush", "fifo"])
    def test_eviction_during_streaming_matches_serial(self, backend, policy):
        config = SystemConfig(cache_capacity_bytes=400,
                              cache_eviction_policy=policy)
        fleet = run_fleet(POOL, config=config, backend=backend, max_lanes=2)
        for cell in POOL:
            assert fleet.reports[cell] == serial_report(cell, config)


class TestGridStreaming:
    """run_grid(fleet_max_lanes=...) — wiring and store digests."""

    def _store_files(self, root):
        files = {}
        for dirpath, _, names in os.walk(root):
            for name in names:
                path = os.path.join(dirpath, name)
                with open(path, "rb") as handle:
                    files[os.path.relpath(path, root)] = handle.read()
        return files

    def test_store_digests_independent_of_max_lanes(self, tmp_path):
        from repro.experiments.runner import run_grid

        kwargs = dict(
            scale=0.05, seed=5, benchmarks=("gzip", "bzip2"),
            selectors=("net", "lei"), code_version="v1",
        )
        serial = run_grid(store=str(tmp_path / "serial"),
                          backend="serial", **kwargs)
        streamed = run_grid(store=str(tmp_path / "streamed"),
                            backend="batched", fleet_max_lanes=3, **kwargs)
        assert serial.reports == streamed.reports
        assert (self._store_files(str(tmp_path / "serial"))
                == self._store_files(str(tmp_path / "streamed")))

    def test_fleet_max_lanes_requires_the_batched_backend(self):
        from repro.experiments.runner import run_grid

        with pytest.raises(ConfigError):
            run_grid(scale=0.05, benchmarks=("gzip",), selectors=("net",),
                     backend="serial", fleet_max_lanes=2)
