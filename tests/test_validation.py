"""Tests for the machine-checkable paper-claim validator."""

import pytest

from repro.experiments.validation import (
    CLAIMS,
    ClaimResult,
    render_validation,
    validate_grid,
)


class TestClaimRegistry:
    def test_covers_every_numbered_figure(self):
        for figure in ("fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
                       "fig16", "fig17", "fig18", "fig19"):
            assert figure in CLAIMS

    def test_claim_subset_selection(self):
        # A tiny grid: claims may fail, but only the asked-for ones run.
        from repro.experiments.runner import run_grid

        grid = run_grid(scale=0.05, benchmarks=("gzip",))
        results = validate_grid(grid, claims=["fig08"])
        assert len(results) == 1
        assert results[0].claim_id == "fig08"

    def test_checker_exception_becomes_failed_claim(self):
        from repro.experiments.runner import run_grid

        # An LEI-only grid cannot compute NET columns: the claim must
        # fail gracefully, not crash validation.
        grid = run_grid(scale=0.05, benchmarks=("gzip",), selectors=("lei",))
        results = validate_grid(grid, claims=["fig08"])
        assert not results[0].passed
        assert "raised" in results[0].detail


class TestRendering:
    def test_render_shows_status_and_tally(self):
        results = [
            ClaimResult("a", "first", True, "fine"),
            ClaimResult("b", "second", False, "broken"),
        ]
        text = render_validation(results)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "1/2 claims hold" in text


@pytest.mark.slow
class TestFullValidation:
    def test_all_claims_hold_at_reduced_scale(self):
        """The integration check behind `--validate`: at 40% scale every
        directional claim must already hold."""
        from repro.experiments.runner import run_grid

        grid = run_grid(scale=0.4)
        results = validate_grid(grid)
        failing = [r for r in results if not r.passed]
        assert not failing, render_validation(results)
