"""Tests for observed-CFG construction (4.2.2) and MARK-REJOINING-PATHS."""

import pytest

from repro.errors import SelectionError
from repro.selection.marking import mark_rejoining_paths
from repro.selection.region_cfg import ObservedCFG, build_observed_cfg


def B(program, label):
    return program.block_by_full_label(label)


@pytest.fixture
def diamond_blocks(diamond_program):
    p = diamond_program
    return {
        label: B(p, f"main:{label}")
        for label in ("A", "B", "C", "D", "E", "F", "A2")
    }


class TestObservedCFG:
    def test_counts_blocks_once_per_trace(self, diamond_blocks):
        b = diamond_blocks
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["B"], b["D"], b["F"]],
            [b["A"], b["C"], b["D"], b["F"]],
        ])
        assert cfg.trace_counts[b["A"]] == 2
        assert cfg.trace_counts[b["D"]] == 2
        assert cfg.trace_counts[b["B"]] == 1
        assert cfg.trace_counts[b["C"]] == 1

    def test_repeated_block_in_one_trace_counts_once(self, diamond_blocks):
        b = diamond_blocks
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["B"], b["D"], b["A"], b["B"]],
        ])
        assert cfg.trace_counts[b["A"]] == 1
        assert cfg.trace_counts[b["B"]] == 1

    def test_edges_accumulate_across_traces(self, diamond_blocks):
        b = diamond_blocks
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["B"], b["D"]],
            [b["A"], b["C"], b["D"]],
        ])
        assert (b["A"], b["B"]) in cfg.edges
        assert (b["A"], b["C"]) in cfg.edges
        assert (b["C"], b["D"]) in cfg.edges
        assert cfg.successors[b["A"]] == {b["B"], b["C"]}

    def test_mismatched_entrance_rejected(self, diamond_blocks):
        b = diamond_blocks
        cfg = ObservedCFG(b["A"])
        with pytest.raises(SelectionError, match="starts at"):
            cfg.add_trace([b["B"], b["D"]])

    def test_empty_trace_rejected(self, diamond_blocks):
        cfg = ObservedCFG(diamond_blocks["A"])
        with pytest.raises(SelectionError):
            cfg.add_trace([])

    def test_threshold_filter(self, diamond_blocks):
        b = diamond_blocks
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["B"], b["D"]],
            [b["A"], b["C"], b["D"]],
            [b["A"], b["B"], b["D"]],
        ])
        assert cfg.blocks_with_count_at_least(2) == {b["A"], b["B"], b["D"]}
        assert cfg.blocks_with_count_at_least(1) == {b["A"], b["B"], b["C"], b["D"]}


class TestMarking:
    def test_rejoining_path_marked(self, diamond_blocks):
        """The Figure 4 scenario: C is on a path that rejoins D."""
        b = diamond_blocks
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["B"], b["D"], b["F"]],
            [b["A"], b["C"], b["D"], b["F"]],
        ])
        marked = {b["A"], b["B"], b["D"], b["F"]}  # C too rare to mark
        result = mark_rejoining_paths(cfg, marked)
        assert b["C"] in result.marked

    def test_dead_end_path_not_marked(self, diamond_blocks):
        b = diamond_blocks
        # E exits and never rejoins in the observed traces.
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["B"], b["D"], b["F"]],
            [b["A"], b["B"], b["D"], b["E"]],
        ])
        marked = {b["A"], b["B"], b["D"], b["F"]}
        result = mark_rejoining_paths(cfg, marked)
        assert b["E"] not in result.marked

    def test_multi_hop_rejoin_marked_in_one_sweep(self, diamond_blocks):
        b = diamond_blocks
        # A -> C -> D -> E -> A2 -> ... -> F(marked): C,D,E,A2 all rejoin.
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["C"], b["D"], b["E"], b["A2"], b["F"]],
        ])
        marked = {b["A"], b["F"]}
        result = mark_rejoining_paths(cfg, marked)
        assert {b["C"], b["D"], b["E"], b["A2"]} <= result.marked
        # Post-order lets every mark land in the first sweep; the second
        # sweep only confirms the fixpoint.
        assert result.extra_marking_sweeps == 0

    def test_input_set_not_mutated(self, diamond_blocks):
        b = diamond_blocks
        cfg = build_observed_cfg(b["A"], [[b["A"], b["B"], b["D"]]])
        marked = {b["A"], b["D"]}
        mark_rejoining_paths(cfg, marked)
        assert marked == {b["A"], b["D"]}

    def test_marks_never_erased(self, diamond_blocks):
        b = diamond_blocks
        cfg = build_observed_cfg(b["A"], [[b["A"], b["B"], b["D"]]])
        marked = {b["A"], b["B"], b["D"]}
        result = mark_rejoining_paths(cfg, marked)
        assert marked <= result.marked

    def test_cycle_in_observed_cfg_terminates(self, diamond_blocks):
        b = diamond_blocks
        # A -> B -> D -> A (cycle): marks propagate around the loop
        # without infinite sweeps.
        cfg = build_observed_cfg(b["A"], [
            [b["A"], b["B"], b["D"], b["A"], b["B"]],
        ])
        result = mark_rejoining_paths(cfg, {b["D"]})
        assert result.marked == {b["A"], b["B"], b["D"]}
        assert result.sweeps <= 3
