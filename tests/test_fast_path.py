"""Bit-identity suite for the fused fast path (execute→simulate).

The simulator has three pipeline implementations — the reference pull
generator (``Simulator.run``), the generic push consumer
(``Simulator.run_push``, used for replay) and the fully fused loop
(``Simulator.run_program``).  Everything here pins them to each other:
for every (benchmark × selector) cell the fast paths must reproduce the
reference results *bit for bit* — metric report, raw run statistics,
edge profile, selector diagnostics and timeline samples.

The trace codec gets the same treatment: the push-mode writer/decoder
pair (``TraceWriter.write`` / ``TraceReader.steps_into``) must agree
byte-for-byte and step-for-step with the Step-based reference methods,
including on hypothesis-generated record streams and on malformed
input.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.errors import TraceFormatError
from repro.execution.engine import ExecutionEngine
from repro.metrics.linking import inter_region_links, resident_inter_region_links
from repro.metrics.summary import MetricReport
from repro.program.builder import ProgramBuilder
from repro.selection.registry import RELATED_SELECTOR_NAMES, SELECTOR_NAMES
from repro.system.simulator import Simulator, simulate
from repro.tracing import (
    TraceHeader,
    TraceReader,
    TraceWriter,
    collect_trace,
    replay_trace,
    replay_trace_into,
)
from repro.tracing.records import RECORD_HEAD
from repro.workloads import build_benchmark

ALL_SELECTORS = SELECTOR_NAMES + RELATED_SELECTOR_NAMES
BENCHMARKS = ("gzip", "mcf", "vortex")
SCALE = 0.05


@pytest.fixture(scope="module")
def programs():
    """One finalized program per benchmark, shared across the module."""
    return {name: build_benchmark(name, scale=SCALE) for name in BENCHMARKS}


def _fingerprint(result):
    """Everything a run measures, in comparable form."""
    stats = {
        name: getattr(result.stats, name) for name in result.stats.__slots__
    }
    return (
        MetricReport.from_result(result),
        stats,
        result.edge_profile,
        result.selector_diagnostics,
        result.samples,
        result.peak_counters,
        result.peak_observed_trace_bytes,
    )


class TestFusedVersusReference:
    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_bit_identical_results(self, programs, bench, selector):
        fast = simulate(programs[bench], selector, seed=0, fast=True)
        ref = simulate(programs[bench], selector, seed=0, fast=False)
        assert _fingerprint(fast) == _fingerprint(ref)

    def test_samples_identical_between_paths(self, programs):
        fast = simulate(programs["mcf"], "lei", seed=0, sample_every=500,
                        fast=True)
        ref = simulate(programs["mcf"], "lei", seed=0, sample_every=500,
                       fast=False)
        assert fast.samples == ref.samples
        assert fast.samples  # the run is long enough to sample

    def test_engine_counters_match_reference(self, programs):
        fast_engine = ExecutionEngine(programs["gzip"], seed=0)
        ref_engine = ExecutionEngine(programs["gzip"], seed=0)
        simulator = Simulator(programs["gzip"], "net")
        simulator.run_program(fast_engine)
        Simulator(programs["gzip"], "net").run(ref_engine.run())
        assert fast_engine.steps_executed == ref_engine.steps_executed
        assert (fast_engine.instructions_executed
                == ref_engine.instructions_executed)

    def test_run_program_rejects_foreign_engine(self, programs):
        from repro.errors import ReproError

        engine = ExecutionEngine(programs["gzip"], seed=0)
        simulator = Simulator(programs["mcf"], "net")
        with pytest.raises(ReproError):
            simulator.run_program(engine)


class TestBoundedCacheIdentity:
    """The link-invalidation path: fast == reference under eviction.

    Capacity 300 is below every selector's steady-state footprint on
    gzip at this scale, so every cell actually evicts (asserted) and
    the dispatch layer's retire/patch lifecycle is exercised for real.
    """

    @pytest.mark.parametrize("policy", ("flush", "fifo"))
    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    def test_bit_identical_under_eviction(self, programs, selector, policy):
        config = SystemConfig(cache_capacity_bytes=300,
                              cache_eviction_policy=policy)
        fast = simulate(programs["gzip"], selector, config, seed=0, fast=True)
        ref = simulate(programs["gzip"], selector, config, seed=0, fast=False)
        assert fast.cache_evictions > 0
        assert fast.cache_evictions == ref.cache_evictions
        assert fast.regenerated_regions == ref.regenerated_regions
        assert _fingerprint(fast) == _fingerprint(ref)


class TestLinkingIdentity:
    """metrics/linking must not see the pipelines apart: the fast path's
    link patching changes *how* transfers chain, never *which* links
    exist."""

    CONFIGS = {
        "unbounded": SystemConfig(),
        "bounded-flush": SystemConfig(cache_capacity_bytes=300,
                                      cache_eviction_policy="flush"),
        "bounded-fifo": SystemConfig(cache_capacity_bytes=300,
                                     cache_eviction_policy="fifo"),
    }

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("selector", ALL_SELECTORS)
    def test_inter_region_links_match(self, programs, selector, config_name):
        config = self.CONFIGS[config_name]
        fast = simulate(programs["gzip"], selector, config, seed=0, fast=True)
        ref = simulate(programs["gzip"], selector, config, seed=0, fast=False)
        assert inter_region_links(fast) == inter_region_links(ref)
        assert (resident_inter_region_links(fast)
                == resident_inter_region_links(ref))

    def test_resident_links_subset_of_total(self, programs):
        config = SystemConfig(cache_capacity_bytes=300,
                              cache_eviction_policy="fifo")
        result = simulate(programs["gzip"], "net", config, seed=0)
        assert result.cache_evictions > 0
        assert resident_inter_region_links(result) <= inter_region_links(result)

    def test_unbounded_resident_links_equal_total(self, programs):
        result = simulate(programs["gzip"], "net", seed=0)
        assert resident_inter_region_links(result) == inter_region_links(result)


class TestReplayMatchesLive:
    @pytest.mark.parametrize("selector", SELECTOR_NAMES)
    def test_collected_trace_replays_identically(self, tmp_path, programs,
                                                 selector):
        program = programs["gzip"]
        trace = tmp_path / "trace.rtrc"
        written = collect_trace(ExecutionEngine(program, seed=0), trace)

        live = simulate(program, selector, seed=0)
        assert written == live.stats.interp_steps + live.stats.cache_steps

        pull = Simulator(program, selector).run(replay_trace(trace, program))
        push = Simulator(program, selector).run_push(
            lambda consume: replay_trace_into(trace, program, consume)
        )
        assert _fingerprint(pull) == _fingerprint(live)
        assert _fingerprint(push) == _fingerprint(live)

    def test_push_collection_writes_reference_bytes(self, tmp_path, programs):
        program = programs["gzip"]
        fast_file = tmp_path / "fast.rtrc"
        collect_trace(ExecutionEngine(program, seed=0), fast_file)

        ref_engine = ExecutionEngine(program, seed=0)
        header = TraceHeader(program.name, program.block_count, ref_engine.seed)
        ref_file = tmp_path / "ref.rtrc"
        with open(ref_file, "wb") as fh:
            with TraceWriter(fh, header) as writer:
                for step in ref_engine.run():
                    writer.write_step(step)

        assert fast_file.read_bytes() == ref_file.read_bytes()


# -- trace codec properties ---------------------------------------------

def _codec_program():
    pb = ProgramBuilder("codec")
    main = pb.procedure("main")
    for i in range(6):
        main.block(f"b{i}", insts=1)
    main.block("end", insts=1).halt()
    return pb.build()


_CODEC_PROGRAM = _codec_program()
_CODEC_BLOCKS = _CODEC_PROGRAM.blocks
_CODEC_IDS = len(_CODEC_BLOCKS) - 1

_record = st.tuples(
    st.integers(0, _CODEC_IDS),
    st.booleans(),
    st.one_of(st.none(), st.integers(0, _CODEC_IDS)),
)


def _encode(records) -> bytes:
    buf = io.BytesIO()
    header = TraceHeader(_CODEC_PROGRAM.name, _CODEC_PROGRAM.block_count, 0)
    with TraceWriter(buf, header) as writer:
        for block_id, taken, target_id in records:
            writer.write(
                _CODEC_BLOCKS[block_id],
                taken,
                None if target_id is None else _CODEC_BLOCKS[target_id],
            )
    return buf.getvalue()


class TestTraceCodec:
    @given(records=st.lists(_record, max_size=300))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_round_trip_pull_and_push(self, records):
        expected = [
            (
                _CODEC_BLOCKS[block_id],
                taken,
                None if target_id is None else _CODEC_BLOCKS[target_id],
            )
            for block_id, taken, target_id in records
        ]
        data = _encode(records)

        pulled = TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps()
        assert [(s.block, s.taken, s.target) for s in pulled] == expected

        pushed = []
        decoded = TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps_into(
            lambda block, taken, target: pushed.append((block, taken, target))
        )
        assert decoded == len(records)
        assert pushed == expected

    def test_trailing_bytes_rejected_by_both_decoders(self):
        data = _encode([(0, True, 1), (1, False, None)]) + b"\x7f"
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            list(TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps())
        with pytest.raises(TraceFormatError, match="trailing bytes"):
            TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps_into(
                lambda *step: None
            )

    def test_truncated_target_rejected_by_both_decoders(self):
        data = _encode([(0, True, 1)])
        data = data[:-2]  # cut into the final target record
        with pytest.raises(TraceFormatError, match="truncated target"):
            list(TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps())
        with pytest.raises(TraceFormatError, match="truncated target"):
            TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps_into(
                lambda *step: None
            )

    def test_out_of_range_block_id_rejected_by_both_decoders(self):
        header = TraceHeader(
            _CODEC_PROGRAM.name, _CODEC_PROGRAM.block_count, 0
        ).encode()
        data = header + RECORD_HEAD.pack(99, 0)
        with pytest.raises(TraceFormatError, match="out of range"):
            list(TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps())
        with pytest.raises(TraceFormatError, match="out of range"):
            TraceReader(io.BytesIO(data), _CODEC_PROGRAM).steps_into(
                lambda *step: None
            )

    def test_writer_rejects_use_after_close(self):
        buf = io.BytesIO()
        header = TraceHeader(_CODEC_PROGRAM.name, _CODEC_PROGRAM.block_count, 0)
        writer = TraceWriter(buf, header)
        writer.close()
        with pytest.raises(TraceFormatError):
            writer.write(_CODEC_BLOCKS[0], True, None)
