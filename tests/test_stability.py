"""Tests for the seed-stability analysis."""

import pytest

from repro.errors import ConfigError
from repro.experiments.stability import StabilityReport, seed_stability


class TestSeedStability:
    @pytest.fixture(scope="class")
    def report(self):
        return seed_stability(
            "lei", "net", "region_transitions",
            seeds=(1, 2), scale=0.1, benchmarks=("gzip", "mcf"),
        )

    def test_one_value_per_seed(self, report):
        assert set(report.per_seed) == {1, 2}

    def test_statistics_consistent(self, report):
        values = list(report.per_seed.values())
        assert report.mean == pytest.approx(sum(values) / len(values))
        assert report.spread == pytest.approx(max(values) - min(values))
        assert report.stdev >= 0.0

    def test_summary_line_mentions_everything(self, report):
        line = report.summary_line()
        assert "lei/net" in line
        assert "region_transitions" in line
        assert "mean=" in line

    def test_direction_holds_for_each_seed(self, report):
        # LEI beats NET on transitions regardless of seed.
        assert all(value < 1.0 for value in report.per_seed.values())

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError):
            seed_stability("lei", "net", "region_transitions", seeds=())

    def test_single_benchmark_single_seed(self):
        report = seed_stability(
            "lei", "net", "code_expansion",
            seeds=(5,), scale=0.05, benchmarks=("bzip2",),
        )
        assert isinstance(report, StabilityReport)
        assert report.spread == 0.0
