"""Tests for the JSON-lines trace interchange format."""

import json

import pytest

from repro.config import SystemConfig
from repro.errors import TraceFormatError
from repro.execution.engine import ExecutionEngine
from repro.system.simulator import Simulator
from repro.tracing import read_jsonl_trace, write_jsonl_trace


class TestRoundTrip:
    def test_identical_steps(self, diamond_program, tmp_path):
        path = tmp_path / "diamond.jsonl"
        steps = ExecutionEngine(diamond_program, seed=5).run_to_list()
        written = write_jsonl_trace(steps, path, diamond_program.name)
        assert written == len(steps)
        replayed = list(read_jsonl_trace(path, diamond_program))
        assert replayed == steps

    def test_simulation_over_jsonl_matches_live(self, diamond_program, tmp_path):
        path = tmp_path / "diamond.jsonl"
        write_jsonl_trace(
            ExecutionEngine(diamond_program, seed=5).run(),
            path, diamond_program.name,
        )
        config = SystemConfig(net_threshold=5)
        live = Simulator(diamond_program, "net", config).run(
            ExecutionEngine(diamond_program, seed=5).run()
        )
        replayed = Simulator(diamond_program, "net", config).run(
            read_jsonl_trace(path, diamond_program)
        )
        assert live.region_transitions == replayed.region_transitions
        assert live.hit_rate == replayed.hit_rate

    def test_file_is_plain_json_lines(self, straight_line_program, tmp_path):
        path = tmp_path / "straight.jsonl"
        write_jsonl_trace(
            ExecutionEngine(straight_line_program).run(),
            path, straight_line_program.name,
        )
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["program"] == "straight"
        record = json.loads(lines[1])
        assert record["b"] == "main:A"
        assert record["n"] == "main:B"

    def test_handwritten_trace_accepted(self, straight_line_program, tmp_path):
        """The format's purpose: traces authored without this library."""
        path = tmp_path / "hand.jsonl"
        path.write_text(
            '{"program": "straight", "format": "jsonl-v1"}\n'
            '{"b": "main:A", "t": false, "n": "main:B"}\n'
            "\n"  # blank lines are tolerated
            '{"b": "main:B", "t": false, "n": "main:C"}\n'
            '{"b": "main:C", "t": false}\n'
        )
        steps = list(read_jsonl_trace(path, straight_line_program))
        assert [s.block.label for s in steps] == ["A", "B", "C"]
        assert steps[-1].target is None


class TestErrors:
    def test_wrong_program_rejected(self, straight_line_program,
                                    simple_loop_program, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl_trace(
            ExecutionEngine(straight_line_program).run(),
            path, straight_line_program.name,
        )
        with pytest.raises(TraceFormatError, match="recorded for program"):
            list(read_jsonl_trace(path, simple_loop_program))

    def test_unknown_label_rejected(self, straight_line_program, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"program": "straight", "format": "jsonl-v1"}\n'
            '{"b": "main:GHOST", "t": false}\n'
        )
        with pytest.raises(TraceFormatError, match="line 2"):
            list(read_jsonl_trace(path, straight_line_program))

    def test_bad_format_marker_rejected(self, straight_line_program, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"program": "straight", "format": "csv"}\n')
        with pytest.raises(TraceFormatError, match="unsupported"):
            list(read_jsonl_trace(path, straight_line_program))

    def test_empty_file_rejected(self, straight_line_program, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            list(read_jsonl_trace(path, straight_line_program))

    def test_garbage_json_rejected(self, straight_line_program, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(
            '{"program": "straight", "format": "jsonl-v1"}\n'
            'not json at all\n'
        )
        with pytest.raises(TraceFormatError, match="line 2"):
            list(read_jsonl_trace(path, straight_line_program))
