"""Tests for the Figure 14 compact trace representation."""

import pytest

from repro.errors import TraceFormatError
from repro.selection.compact import CompactTrace


def B(program, label):
    return program.block_by_full_label(label)


class TestRoundTrip:
    def test_fallthrough_only_path(self, straight_line_program):
        p = straight_line_program
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "main:C")]
        compact = CompactTrace.encode(path)
        assert compact.decode(p) == path

    def test_taken_conditional_path(self, diamond_program):
        p = diamond_program
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "main:D"), B(p, "main:F")]
        compact = CompactTrace.encode(path)
        assert compact.decode(p) == path

    def test_not_taken_conditional_path(self, diamond_program):
        p = diamond_program
        path = [B(p, "main:A"), B(p, "main:C"), B(p, "main:D"), B(p, "main:E")]
        compact = CompactTrace.encode(path)
        assert compact.decode(p) == path

    def test_call_and_return_path(self, call_loop_program):
        p = call_loop_program
        # A -> B -(call)-> E -> F -(return: dynamic target)-> D
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "helper:E"),
                B(p, "helper:F"), B(p, "main:D")]
        compact = CompactTrace.encode(path)
        assert compact.decode(p) == path

    def test_indirect_branch_records_explicit_address(self):
        from repro.behavior.models import LoopTrip
        from repro.program.builder import ProgramBuilder

        pb = ProgramBuilder("switchy")
        main = pb.procedure("main")
        main.block("top", insts=1).cond("dispatch", model=LoopTrip(10))
        main.block("exit", insts=1).halt()
        main.block("dispatch", insts=2).indirect({"case_a": 0.5, "case_b": 0.5})
        main.block("case_a", insts=3).jump("top")
        main.block("case_b", insts=4).jump("top")
        p = pb.build()
        path = [B(p, "main:dispatch"), B(p, "main:case_b"), B(p, "main:top")]
        compact = CompactTrace.encode(path)
        assert compact.decode(p) == path

    def test_single_block_trace(self, simple_loop_program):
        p = simple_loop_program
        path = [B(p, "main:head")]
        compact = CompactTrace.encode(path)
        assert compact.decode(p) == path


class TestSizing:
    def test_two_bits_per_direct_branch(self, straight_line_program):
        p = straight_line_program
        # 2 branch records (2 bits each) + end marker (2) + 64-bit address.
        compact = CompactTrace.encode(
            [B(p, "main:A"), B(p, "main:B"), B(p, "main:C")]
        )
        assert compact.bit_length == 2 * 2 + 2 + 64
        assert compact.byte_size == (compact.bit_length + 7) // 8

    def test_dynamic_branch_costs_address(self, call_loop_program):
        p = call_loop_program
        with_return = CompactTrace.encode(
            [B(p, "helper:F"), B(p, "main:D")]  # return: "01" + 64 bits
        )
        without = CompactTrace.encode(
            [B(p, "helper:E"), B(p, "helper:F")]  # fall-through: "10"
        )
        assert with_return.bit_length == without.bit_length + 64

    def test_compact_is_much_smaller_than_block_list(self, diamond_program):
        p = diamond_program
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "main:D"), B(p, "main:F")]
        compact = CompactTrace.encode(path)
        # 3 direct branches -> 6 bits + 66 end bits = 9 bytes, versus
        # 8 bytes *per pointer* for the naive representation.
        assert compact.byte_size < len(path) * 8


class TestErrors:
    def test_empty_path_rejected(self):
        with pytest.raises(TraceFormatError):
            CompactTrace.encode([])

    def test_truncated_bitstring_rejected(self, straight_line_program):
        p = straight_line_program
        compact = CompactTrace.encode([B(p, "main:A"), B(p, "main:B")])
        broken = CompactTrace(compact.entrance, compact.data, 4)
        with pytest.raises(TraceFormatError, match="truncated"):
            broken.decode(p)

    def test_decode_against_wrong_entrance_detected(self, straight_line_program):
        p = straight_line_program
        compact = CompactTrace.encode([B(p, "main:A"), B(p, "main:B")])
        lied = CompactTrace(B(p, "main:B"), compact.data, compact.bit_length)
        # Walking from B: one fall-through reaches C, whose end address
        # does not match the recorded end of B.
        with pytest.raises(TraceFormatError):
            lied.decode(p)
