"""Tests for the design-choice ablation flags."""

import pytest

from repro.config import SystemConfig
from repro.metrics import spanned_cycle_ratio
from repro.system.simulator import simulate
from repro.workloads import build_micro


class TestNetBackwardCallRule:
    """Section 2.2: "stopping at a backward function call or return
    enables NET to limit code expansion, but it prevents any
    interprocedural cycle from being spanned"."""

    @pytest.fixture
    def program(self):
        return build_micro("figure2")

    def test_default_rule_cannot_span(self, program):
        result = simulate(program, "net", SystemConfig())
        assert spanned_cycle_ratio(result) == 0.0

    def test_relaxed_recorder_can_span_the_interprocedural_cycle(self, program):
        """Drive the recorder directly from the loop header: with the
        stop rule relaxed, it crosses the backward call and closes the
        full cycle (end-to-end, the callee's counter usually fires first
        and takes the E-rooted rotation instead)."""
        from repro.cache.codecache import CodeCache
        from repro.execution.events import Step
        from repro.selection.net import TraceRecorder

        label = program.block_by_full_label
        a, b, d = label("main:A"), label("main:B"), label("main:D")
        e, f = label("helper:E"), label("helper:F")
        config = SystemConfig(net_stop_at_backward_calls=False)
        cache = CodeCache()
        recorder = TraceRecorder(head=a)
        assert not recorder.feed(Step(a, False, b), cache, config)
        # The backward call no longer ends the trace...
        assert not recorder.feed(Step(b, True, e), cache, config)
        assert not recorder.feed(Step(e, False, f), cache, config)
        assert not recorder.feed(Step(f, True, d), cache, config)
        # ...but the branch closing the trace's own cycle always does.
        assert recorder.feed(Step(d, True, a), cache, config)
        assert recorder.blocks == [a, b, e, f, d]
        assert recorder.final_target is a  # spans the cycle

    def test_strict_recorder_stops_at_the_backward_call(self, program):
        from repro.cache.codecache import CodeCache
        from repro.execution.events import Step
        from repro.selection.net import TraceRecorder

        label = program.block_by_full_label
        a, b, e = label("main:A"), label("main:B"), label("helper:E")
        recorder = TraceRecorder(head=a)
        config = SystemConfig()
        assert not recorder.feed(Step(a, False, b), CodeCache(), config)
        assert recorder.feed(Step(b, True, e), CodeCache(), config)
        assert recorder.blocks == [a, b]

    def test_relaxed_rule_still_terminates_traces(self, program):
        """Even without the call/return stop, the head-closing branch and
        the size limit bound every trace."""
        config = SystemConfig(net_stop_at_backward_calls=False)
        result = simulate(program, "net", config)
        for region in result.regions:
            assert len(region.path) <= config.max_trace_blocks

    def test_relaxed_rule_costs_expansion_on_call_heavy_benchmarks(self):
        """The paper's justification for the rule, reproduced: on the
        benchmarks with backward calls inside hot loops (eon, gap),
        extending through them copies more code."""
        from repro.workloads import build_benchmark

        strict_total = relaxed_total = 0
        for bench in ("eon", "gap"):
            program = build_benchmark(bench, scale=0.15)
            strict_total += simulate(
                program, "net", SystemConfig(), seed=1
            ).code_expansion
            relaxed_total += simulate(
                program, "net",
                SystemConfig(net_stop_at_backward_calls=False), seed=1,
            ).code_expansion
        assert relaxed_total > strict_total


class TestLeiExitCycleRule:
    """Figure 5 line 9's second disjunct lets traces grow from exits."""

    def test_exit_rule_enables_selection_at_exit_targets(self, nested_loop_program):
        config = SystemConfig(lei_threshold=4)
        result = simulate(nested_loop_program, "lei", config)
        entries = {r.entry.label for r in result.regions}
        assert "C" in entries  # reachable only via the follows-exit rule

    def test_without_exit_rule_exit_targets_never_start_traces(
        self, nested_loop_program
    ):
        config = SystemConfig(lei_threshold=4, lei_allow_exit_cycles=False)
        result = simulate(nested_loop_program, "lei", config)
        entries = {r.entry.label for r in result.regions}
        assert "C" not in entries

    def test_without_exit_rule_coverage_degrades(self, nested_loop_program):
        full = simulate(nested_loop_program, "lei", SystemConfig(lei_threshold=4))
        restricted = simulate(
            nested_loop_program, "lei",
            SystemConfig(lei_threshold=4, lei_allow_exit_cycles=False),
        )
        assert restricted.hit_rate <= full.hit_rate
        assert restricted.region_count <= full.region_count
