"""End-to-end observability: simulator, selectors, cache, CLI, errors."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.config import SystemConfig
from repro.errors import ReproError, SelectionError
from repro.execution.engine import ExecutionEngine
from repro.obs import (
    CollectingSink,
    MetricsRegistry,
    Observer,
    SpanTimer,
    full_observer,
    load_events,
)
from repro.system.simulator import Simulator, simulate
from repro.workloads import build_benchmark


def observed_run(program, selector, config=None, seed=1, **obs_kwargs):
    obs = Observer(
        metrics=MetricsRegistry(),
        sink=CollectingSink(**obs_kwargs),
        profiler=SpanTimer(),
    )
    result = simulate(program, selector, config, seed=seed, observer=obs)
    return result, obs


class TestEventEmission:
    @pytest.mark.parametrize("selector", ["net", "lei", "combined-net",
                                          "combined-lei"])
    def test_region_installed_matches_run_result(self, selector):
        program = build_benchmark("mcf", scale=0.05)
        result, obs = observed_run(program, selector)
        installed = obs.sink.by_kind("region_installed")
        assert len(installed) == result.region_count
        assert [e.get("entry") for e in installed] == [
            r.entry.full_label for r in result.regions
        ]
        assert [e.get("order") for e in installed] == [
            r.selection_order for r in result.regions
        ]
        assert [e.step for e in installed] == [
            r.selected_at_step for r in result.regions
        ]
        # Every event carries the run identity via common fields.
        assert all(e.get("selector") == selector for e in installed)

    def test_cache_exit_events_match_stats(self):
        program = build_benchmark("gzip", scale=0.05)
        result, obs = observed_run(program, "lei")
        exits = obs.sink.by_kind("cache_exit")
        assert len(exits) == result.stats.cache_exits
        entries = obs.sink.by_kind("cache_entered")
        assert len(entries) == result.stats.cache_entries

    def test_bounded_cache_emits_evictions(self):
        program = build_benchmark("gzip", scale=0.1)
        config = SystemConfig(cache_capacity_bytes=300)
        result, obs = observed_run(program, "lei", config)
        evicted = obs.sink.by_kind("cache_evicted")
        assert result.cache_evictions > 0
        assert len(evicted) == result.cache_evictions
        assert len(obs.sink.by_kind("cache_flushed")) == result.cache_flushes
        assert all(e.get("policy") == "flush" for e in evicted)

    def test_fifo_eviction_events(self):
        program = build_benchmark("gzip", scale=0.1)
        config = SystemConfig(cache_capacity_bytes=300,
                              cache_eviction_policy="fifo")
        result, obs = observed_run(program, "lei", config)
        evicted = obs.sink.by_kind("cache_evicted")
        assert len(evicted) == result.cache_evictions > 0
        assert all(e.get("policy") == "fifo" for e in evicted)

    def test_lei_emits_history_cleared_per_selection_attempt(self):
        program = build_benchmark("mcf", scale=0.05)
        result, obs = observed_run(program, "lei")
        cleared = obs.sink.by_kind("history_cleared")
        diagnostics = result.selector_diagnostics
        assert len(cleared) == (
            diagnostics["traces_installed"] + diagnostics["formations_abandoned"]
        )

    def test_combined_selector_emits_combine_attempted(self):
        program = build_benchmark("mcf", scale=0.1)
        result, obs = observed_run(program, "combined-lei")
        attempts = obs.sink.by_kind("combine_attempted")
        installed = [e for e in attempts if e.get("outcome") == "installed"]
        assert len(installed) == result.selector_diagnostics["regions_combined"]
        for event in installed:
            assert event.get("kept_blocks") <= event.get("observed_blocks")

    def test_run_lifecycle_events(self):
        program = build_benchmark("mcf", scale=0.05)
        result, obs = observed_run(program, "net")
        assert len(obs.sink.by_kind("run_started")) == 1
        finished = obs.sink.by_kind("run_finished")
        assert len(finished) == 1
        assert finished[0].get("regions") == result.region_count


class TestMetricsReconciliation:
    @pytest.mark.parametrize("selector", ["net", "lei"])
    def test_metrics_snapshot_reconciles_with_result(self, selector):
        program = build_benchmark("vpr", scale=0.05)
        result, obs = observed_run(program, selector)
        snap = result.metrics
        assert sum(snap["regions_installed_total"]["values"].values()) == (
            result.region_count
        )
        assert snap["cache_exits_total"]["values"][""] == result.stats.cache_exits
        assert snap["cache_entries_total"]["values"][""] == (
            result.stats.cache_entries
        )
        assert snap["region_transitions_total"]["values"][""] == (
            result.stats.region_transitions
        )
        assert snap["steps_total"]["values"]["interpret"] == (
            result.stats.interp_steps
        )
        assert snap["steps_total"]["values"]["cache"] == result.stats.cache_steps
        assert snap["instructions_total"]["values"]["cache"] == (
            result.stats.cache_instructions
        )
        hist = snap["region_instructions"]["values"][""]
        assert hist["count"] == result.region_count
        assert hist["sum"] == result.code_expansion

    def test_unobserved_run_has_empty_metrics(self):
        program = build_benchmark("mcf", scale=0.05)
        result = simulate(program, "net", seed=1)
        assert result.metrics == {}


class TestProfiling:
    def test_phase_timings_cover_the_run(self):
        program = build_benchmark("mcf", scale=0.05)
        result, obs = observed_run(program, "lei")
        timer = obs.profiler
        assert timer.depth == 0
        assert set(timer.totals) >= {"interpret", "selector_decide"}
        assert "region_build" in timer.totals  # lei installed regions
        assert timer.steps == (
            result.stats.interp_steps + result.stats.cache_steps
        )
        assert timer.throughput() > 0
        # Self-time phases must sum to (at most) the measured wall time.
        assert sum(timer.totals.values()) <= timer.total_seconds * 1.01


class TestStepHookConsolidation:
    def test_custom_hook_sees_every_step_and_final_index(self):
        program = build_benchmark("mcf", scale=0.05)

        class CountingHook:
            def __init__(self):
                self.steps = 0
                self.last = None
                self.finished_at = None

            def on_step(self, step_index):
                self.steps += 1
                assert step_index == self.steps  # no drift, ever
                self.last = step_index

            def on_finish(self, step_index):
                self.finished_at = step_index

        hook = CountingHook()
        simulator = Simulator(program, "net", sample_every=1000)
        simulator.add_step_hook(hook)
        result = simulator.run(ExecutionEngine(program, seed=1).run())
        total = result.stats.interp_steps + result.stats.cache_steps
        assert hook.steps == total
        assert hook.finished_at == hook.last == total

    def test_sampler_and_hooks_share_the_step_clock(self):
        program = build_benchmark("mcf", scale=0.05)

        class RecordingHook:
            def __init__(self):
                self.indices = []

            def on_step(self, step_index):
                if step_index % 1000 == 0:
                    self.indices.append(step_index)

            def on_finish(self, step_index):
                self.indices.append(step_index)

        hook = RecordingHook()
        simulator = Simulator(program, "net", sample_every=1000)
        simulator.add_step_hook(hook)
        result = simulator.run(ExecutionEngine(program, seed=1).run())
        # The timeline sampler recorded at exactly the steps the hook saw.
        assert [s.step for s in result.samples] == hook.indices


class TestErrorContext:
    def broken_simulator(self, program):
        sink = CollectingSink()
        simulator = Simulator(program, "lei", observer=Observer(sink=sink))
        original = simulator.selector.buffer.insert
        calls = {"n": 0}

        def sabotage(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 40:
                raise SelectionError("synthetic fault")
            return original(*args, **kwargs)

        simulator.selector.buffer.insert = sabotage
        return simulator, sink

    def test_error_carries_context_and_run_failed_event(self):
        program = build_benchmark("mcf", scale=0.05)
        simulator, sink = self.broken_simulator(program)
        with pytest.raises(ReproError) as excinfo:
            simulator.run(ExecutionEngine(program, seed=1).run())
        exc = excinfo.value
        assert exc.context["benchmark"] == "mcf"
        assert exc.context["selector"] == "lei"
        assert exc.context["step"] > 0
        assert "benchmark=mcf" in str(exc)
        failed = [e for e in sink.events if e.kind == "run_failed"]
        assert len(failed) == 1
        assert failed[0].get("error") == "SelectionError"
        assert failed[0].get("message") == "synthetic fault"
        assert failed[0].step == exc.context["step"]

    def test_with_context_keeps_innermost_values(self):
        error = SelectionError("x").with_context(step=5)
        error.with_context(step=9, selector="net")
        assert error.context == {"step": 5, "selector": "net"}


class TestCliSurface:
    def test_run_writes_events_metrics_and_profile(self, tmp_path, capsys):
        events_path = str(tmp_path / "e.jsonl")
        metrics_path = str(tmp_path / "m.prom")
        code = cli_main([
            "run", "gzip", "lei", "--scale", "0.05",
            "--cache-capacity", "300",
            "--trace-events", events_path,
            "--metrics-out", metrics_path,
            "--profile",
        ])
        assert code == 0
        out, err = capsys.readouterr()
        assert "hit rate" in out
        assert "throughput" in err  # profile table goes to stderr
        events = list(load_events(events_path))
        kinds = {event.kind for event in events}
        assert {"region_installed", "cache_exit", "cache_evicted"} <= kinds
        metrics_text = open(metrics_path, encoding="utf-8").read()
        assert "# TYPE repro_regions_installed_total counter" in metrics_text
        assert "repro_cache_exits_total" in metrics_text

    def test_inspect_summarizes_without_rerunning(self, tmp_path, capsys):
        events_path = str(tmp_path / "e.jsonl")
        cli_main([
            "run", "gzip", "net", "--scale", "0.05",
            "--trace-events", events_path,
        ])
        capsys.readouterr()
        code = cli_main(["inspect", events_path])
        assert code == 0
        out, _ = capsys.readouterr()
        assert "events by kind" in out
        assert "region_installed" in out
        assert "selection decisions by selector" in out

    def test_severity_filter_flag(self, tmp_path):
        events_path = str(tmp_path / "e.jsonl")
        cli_main([
            "run", "gzip", "net", "--scale", "0.05",
            "--trace-events", events_path,
            "--events-min-severity", "info",
        ])
        events = list(load_events(events_path))
        assert events, "info-severity events must survive the filter"
        assert all(event.severity != "debug" for event in events)
        assert not [e for e in events if e.kind == "cache_exit"]

    def test_full_observer_convenience(self):
        obs = full_observer(profile=True)
        assert obs.metrics_enabled and obs.events_enabled
        assert obs.profiling_enabled
        program = build_benchmark("mcf", scale=0.05)
        result = simulate(program, "net", seed=1, observer=obs)
        assert result.metrics
        assert obs.sink.events
