"""Tests for the fault-tolerant job engine (repro.jobs)."""

import json

import pytest

from repro.errors import JobError
from repro.jobs import (
    CheckpointJournal,
    FaultInjector,
    Job,
    JobEngine,
    pick_mp_context,
)
from repro.obs import CollectingSink, Observer


def square(payload):
    """Top-level worker so spawn/fork contexts can pickle it."""
    return payload * payload


def explode(payload):
    raise ValueError(f"bad payload {payload}")


def jobs_for(values):
    return [Job(f"job-{value}", value) for value in values]


def observed():
    sink = CollectingSink()
    return Observer(sink=sink), sink


class TestSerialEngine:
    def test_results_in_input_order(self):
        engine = JobEngine(square)
        outcomes = engine.run(jobs_for([3, 1, 2]))
        assert list(outcomes) == ["job-3", "job-1", "job-2"]
        assert [o.result for o in outcomes.values()] == [9, 1, 4]
        assert all(o.attempts == 1 for o in outcomes.values())

    def test_duplicate_job_ids_rejected(self):
        engine = JobEngine(square)
        with pytest.raises(JobError) as exc_info:
            engine.run([Job("same", 1), Job("same", 2)])
        assert exc_info.value.context["job_id"] == "same"

    def test_injected_errors_are_retried_until_success(self):
        observer, sink = observed()
        engine = JobEngine(square, backoff=0.0, max_retries=2,
                           observer=observer,
                           faults=FaultInjector(errors={"job-3": 2}))
        outcomes = engine.run(jobs_for([3, 4]))
        assert outcomes["job-3"].result == 9
        assert outcomes["job-3"].attempts == 3
        assert outcomes["job-4"].attempts == 1
        retried = sink.by_kind("job_retried")
        assert len(retried) == 2
        assert all(e.get("job_id") == "job-3" for e in retried)

    def test_exhausted_retries_surface_contextual_error(self):
        observer, sink = observed()
        engine = JobEngine(square, backoff=0.0, max_retries=1,
                           observer=observer,
                           faults=FaultInjector(errors={"job-5": 99}))
        with pytest.raises(JobError) as exc_info:
            engine.run(jobs_for([5]))
        error = exc_info.value
        assert error.context["job_id"] == "job-5"
        assert error.context["attempts"] == 2
        assert "InjectedFault" in error.context["reason"]
        # The context is rendered into the message itself.
        assert "job-5" in str(error)
        assert sink.by_kind("job_failed")[0].get("job_id") == "job-5"

    def test_worker_exception_chains_into_joberror(self):
        engine = JobEngine(explode, backoff=0.0, max_retries=0)
        with pytest.raises(JobError) as exc_info:
            engine.run(jobs_for([7]))
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_in_process_crash_degrades_to_exception(self):
        # A hard crash cannot be simulated without killing the test
        # process; in-process the injector raises instead.
        engine = JobEngine(square, backoff=0.0, max_retries=1,
                           faults=FaultInjector(crashes={"job-2": 1}))
        outcomes = engine.run(jobs_for([2]))
        assert outcomes["job-2"].result == 4
        assert outcomes["job-2"].attempts == 2


class TestParallelEngine:
    def test_matches_serial_results(self):
        values = list(range(8))
        serial = JobEngine(square).run(jobs_for(values))
        parallel = JobEngine(square, workers=4).run(jobs_for(values))
        assert {k: o.result for k, o in serial.items()} == {
            k: o.result for k, o in parallel.items()
        }
        assert list(parallel) == list(serial)

    def test_hard_crashes_are_retried_to_completion(self):
        observer, sink = observed()
        engine = JobEngine(
            square, workers=3, backoff=0.01, max_retries=2,
            observer=observer,
            faults=FaultInjector(crashes={"job-1": 2, "job-4": 1}),
        )
        outcomes = engine.run(jobs_for([0, 1, 2, 3, 4]))
        assert {k: o.result for k, o in outcomes.items()} == {
            "job-0": 0, "job-1": 1, "job-2": 4, "job-3": 9, "job-4": 16,
        }
        assert outcomes["job-1"].attempts == 3
        assert outcomes["job-4"].attempts == 2
        reasons = {e.get("reason") for e in sink.by_kind("job_retried")}
        assert any("crash" in str(reason) for reason in reasons)

    def test_crash_exhaustion_aborts_with_context(self):
        engine = JobEngine(
            square, workers=2, backoff=0.01, max_retries=1,
            faults=FaultInjector(crashes={"job-1": 99}),
        )
        with pytest.raises(JobError) as exc_info:
            engine.run(jobs_for([0, 1, 2, 3]))
        assert exc_info.value.context["job_id"] == "job-1"
        assert exc_info.value.context["attempts"] == 2
        assert "crash" in exc_info.value.context["reason"]

    def test_hung_worker_is_killed_and_retried(self):
        observer, sink = observed()
        engine = JobEngine(
            square, workers=2, timeout=0.3, backoff=0.01, max_retries=1,
            observer=observer,
            faults=FaultInjector(hangs={"job-2": (1, 30.0)}),
        )
        outcomes = engine.run(jobs_for([1, 2]))
        assert outcomes["job-2"].result == 4
        assert outcomes["job-2"].attempts == 2
        retried = sink.by_kind("job_retried")
        assert any("timeout" in str(e.get("reason")) for e in retried)


class TestCheckpointResume:
    def test_completed_jobs_are_not_rerun(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            JobEngine(square, checkpoint=journal).run(jobs_for([1, 2]))

        observer, sink = observed()
        with CheckpointJournal(path) as journal:
            engine = JobEngine(square, observer=observer, checkpoint=journal)
            outcomes = engine.run(jobs_for([1, 2, 3, 4]))
        assert {k: o.result for k, o in outcomes.items()} == {
            "job-1": 1, "job-2": 4, "job-3": 9, "job-4": 16,
        }
        assert outcomes["job-1"].restored and outcomes["job-2"].restored
        assert outcomes["job-3"].attempts == 1
        restored = {e.get("job_id") for e in sink.by_kind("job_restored")}
        assert restored == {"job-1", "job-2"}
        submitted = {e.get("job_id") for e in sink.by_kind("job_submitted")}
        assert submitted == {"job-3", "job-4"}

    def test_interrupted_run_checkpoints_completed_prefix(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with CheckpointJournal(path) as journal:
            engine = JobEngine(
                square, backoff=0.0, max_retries=0, checkpoint=journal,
                faults=FaultInjector(errors={"job-3": 99}),
            )
            with pytest.raises(JobError):
                engine.run(jobs_for([1, 2, 3, 4]))
        # Jobs finished before the abort survive it; the failed job and
        # everything after it are recomputed on resume.
        with CheckpointJournal(path) as journal:
            assert set(journal.load()) == {"job-1", "job-2"}
            outcomes = JobEngine(square, checkpoint=journal).run(
                jobs_for([1, 2, 3, 4])
            )
        assert outcomes["job-3"].result == 9
        assert outcomes["job-1"].restored

    def test_torn_final_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"job_id": "job-1", "result": 1}) + "\n"
            + '{"job_id": "job-2", "resu'
        )
        journal = CheckpointJournal(str(path))
        assert journal.load() == {"job-1": 1}

    def test_serialize_hooks_round_trip(self, tmp_path):
        journal = CheckpointJournal(
            str(tmp_path / "journal.jsonl"),
            serialize=lambda pair: list(pair),
            deserialize=lambda data: tuple(data),
        )
        journal.record("job-a", (1, 2))
        journal.close()
        assert journal.load() == {"job-a": (1, 2)}


class TestContextSelection:
    def test_explicit_method_wins(self):
        assert pick_mp_context("spawn").get_start_method() == "spawn"

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_START_METHOD", "spawn")
        assert pick_mp_context().get_start_method() == "spawn"

    def test_default_is_a_supported_method(self):
        import multiprocessing

        method = pick_mp_context().get_start_method()
        assert method in multiprocessing.get_all_start_methods()

    def test_spawn_context_runs_the_engine(self):
        engine = JobEngine(square, workers=2,
                           mp_context=pick_mp_context("spawn"))
        outcomes = engine.run(jobs_for([5, 6]))
        assert [o.result for o in outcomes.values()] == [25, 36]
