"""Property-based tests (hypothesis) on core invariants.

Programs are generated from the motif library with randomized structure
and seeds, so every generated program is valid, halting, and realistic;
the properties then assert conservation laws and algorithm invariants
that must hold for *any* program.
"""

from itertools import islice

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.behavior.models import LoopTrip
from repro.behavior.rng import SplitMix64
from repro.config import SystemConfig
from repro.execution.engine import ExecutionEngine
from repro.program.builder import ProgramBuilder
from repro.selection.compact import CompactTrace
from repro.selection.counters import CounterTable
from repro.selection.history import BranchHistoryBuffer
from repro.selection.marking import mark_rejoining_paths
from repro.selection.region_cfg import build_observed_cfg
from repro.system.simulator import Simulator
from repro.workloads import motifs
from repro.workloads.motifs import MotifContext

SELECTORS = ("net", "lei", "combined-net", "combined-lei")


@st.composite
def small_programs(draw):
    """A random, valid, halting program built from motifs."""
    pb = ProgramBuilder("prop", entry="main")
    ctx = MotifContext(pb, SplitMix64(draw(st.integers(0, 2**31))))
    main = pb.procedure("main")
    main.block("start", insts=draw(st.integers(1, 6)))

    outer_head = ctx.fresh("outer")
    main.block(outer_head, insts=1)
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(
            ["hot", "nested", "branchy", "diamond", "switch", "retry", "once"]
        ))
        if kind == "hot":
            motifs.hot_loop(main, ctx, trips=draw(st.integers(2, 20)),
                            body_blocks=draw(st.integers(1, 3)),
                            dual_entry=draw(st.booleans()))
        elif kind == "nested":
            motifs.nested_loop(main, ctx,
                               [draw(st.integers(2, 6)), draw(st.integers(2, 8))])
        elif kind == "branchy":
            motifs.branchy_loop(
                main, ctx, trips=draw(st.integers(2, 10)),
                biases=[draw(st.floats(0.05, 0.95)) for _ in range(draw(st.integers(1, 3)))],
            )
        elif kind == "diamond":
            motifs.diamond(main, ctx, bias=draw(st.floats(0.0, 1.0)))
        elif kind == "switch":
            motifs.switch_loop(main, ctx, trips=draw(st.integers(2, 8)),
                               case_insts=[2] * draw(st.integers(2, 4)))
        elif kind == "retry":
            motifs.rare_retry(main, ctx, retry_probability=draw(st.floats(0.0, 0.3)))
        else:
            motifs.one_shot_loop(main, ctx)
    main.block(ctx.fresh("latch"), insts=1).cond(
        outer_head, model=LoopTrip(draw(st.integers(2, 60)))
    )
    main.block("end", insts=1).halt()
    return pb.build(), draw(st.integers(0, 2**31))


COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestEngineProperties:
    @COMMON
    @given(small_programs())
    def test_stream_is_contiguous(self, program_seed):
        program, seed = program_seed
        engine = ExecutionEngine(program, seed=seed, max_steps=20_000)
        previous_target = None
        for step in engine.run():
            if previous_target is not None:
                assert step.block is previous_target
            previous_target = step.target

    @COMMON
    @given(small_programs())
    def test_engine_deterministic(self, program_seed):
        program, seed = program_seed
        first = [
            (s.block, s.taken)
            for s in ExecutionEngine(program, seed=seed, max_steps=5_000).run()
        ]
        second = [
            (s.block, s.taken)
            for s in ExecutionEngine(program, seed=seed, max_steps=5_000).run()
        ]
        assert first == second


class TestSimulatorConservation:
    @COMMON
    @given(small_programs(), st.sampled_from(SELECTORS))
    def test_instructions_conserved(self, program_seed, selector):
        program, seed = program_seed
        config = SystemConfig(net_threshold=6, lei_threshold=5,
                              combined_net_t_start=3, combined_lei_t_start=2,
                              combine_t_prof=3, combine_t_min=2)
        engine = ExecutionEngine(program, seed=seed, max_steps=30_000)
        result = Simulator(program, selector, config).run(engine.run())
        assert result.total_instructions_executed == engine.instructions_executed
        per_region = sum(r.executed_instructions for r in result.regions)
        assert per_region == result.stats.cache_instructions
        assert 0.0 <= result.hit_rate <= 1.0

    @COMMON
    @given(small_programs(), st.sampled_from(SELECTORS))
    def test_entry_accounting(self, program_seed, selector):
        program, seed = program_seed
        config = SystemConfig(net_threshold=6, lei_threshold=5,
                              combined_net_t_start=3, combined_lei_t_start=2,
                              combine_t_prof=3, combine_t_min=2)
        engine = ExecutionEngine(program, seed=seed, max_steps=30_000)
        result = Simulator(program, selector, config).run(engine.run())
        entries = sum(r.entry_count for r in result.regions)
        assert entries == result.stats.cache_entries + result.stats.region_transitions
        # Every region in the cache was selected; single-entry invariant.
        heads = [r.entry for r in result.regions]
        assert len(heads) == len(set(heads))

    @COMMON
    @given(small_programs())
    def test_region_blocks_are_program_blocks(self, program_seed):
        program, seed = program_seed
        config = SystemConfig(net_threshold=6, lei_threshold=5)
        engine = ExecutionEngine(program, seed=seed, max_steps=30_000)
        result = Simulator(program, "lei", config).run(engine.run())
        universe = set(program.blocks)
        for region in result.regions:
            assert region.block_set <= universe
            assert region.entry in region.block_set


class TestLEITraceProperties:
    @COMMON
    @given(small_programs())
    def test_lei_paths_are_statically_legal(self, program_seed):
        """Every consecutive pair in an LEI trace must be a legal static
        transfer: fall-through, direct target, or dynamic transfer."""
        from repro.isa.opcodes import BranchKind

        program, seed = program_seed
        config = SystemConfig(lei_threshold=5)
        engine = ExecutionEngine(program, seed=seed, max_steps=30_000)
        result = Simulator(program, "lei", config).run(engine.run())
        for region in result.regions:
            path = region.path
            for src, dst in zip(path, path[1:]):
                kind = src.terminator.kind
                legal = (
                    dst is src.fallthrough
                    or dst is src.terminator.taken_target
                    or dst in src.terminator.indirect_targets
                    or kind is BranchKind.RETURN
                )
                assert legal, (src.full_label, dst.full_label, kind)


class TestCompactTraceProperties:
    @COMMON
    @given(small_programs(), st.integers(1, 40))
    def test_round_trip_any_executed_prefix(self, program_seed, length):
        program, seed = program_seed
        steps = list(islice(
            ExecutionEngine(program, seed=seed, max_steps=length + 1).run(), length
        ))
        path = [s.block for s in steps]
        if not path:
            return
        compact = CompactTrace.encode(path)
        assert compact.decode(program) == path

    @COMMON
    @given(small_programs(), st.integers(2, 30))
    def test_compact_size_bound(self, program_seed, length):
        """2 bits per branch + 66 end bits + 64 per dynamic transfer."""
        from repro.isa.opcodes import BranchKind

        program, seed = program_seed
        path = [s.block for s in islice(
            ExecutionEngine(program, seed=seed, max_steps=length + 1).run(), length
        )]
        if len(path) < 2:
            return
        compact = CompactTrace.encode(path)
        dynamic = sum(
            1 for b in path[:-1] if b.terminator.kind.target_is_dynamic
        )
        expected_bits = 2 * (len(path) - 1) + 2 + 64 + 64 * dynamic
        assert compact.bit_length == expected_bits


class TestTraceFormatEquivalence:
    @COMMON
    @given(program_seed=small_programs())
    def test_binary_and_jsonl_replays_match_live(self, tmp_path_factory, program_seed):
        """Any program's run must survive both trace formats verbatim."""
        from repro.tracing import (
            collect_trace, read_jsonl_trace, replay_trace, write_jsonl_trace,
        )

        program, seed = program_seed
        tmp = tmp_path_factory.mktemp("traces")
        binary_path = tmp / "t.rtrc"
        jsonl_path = tmp / "t.jsonl"

        live = list(ExecutionEngine(program, seed=seed, max_steps=2_000).run())
        collect_trace(ExecutionEngine(program, seed=seed, max_steps=2_000),
                      binary_path)
        write_jsonl_trace(iter(live), jsonl_path, program.name)

        assert list(replay_trace(binary_path, program)) == live
        assert list(read_jsonl_trace(jsonl_path, program)) == live


class TestHistoryBufferProperties:
    @COMMON
    @given(st.integers(2, 32), st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                                        min_size=1, max_size=200))
    def test_live_entries_bounded_and_lookup_latest(self, capacity, ops):
        pb = ProgramBuilder("bufprop")
        main = pb.procedure("main")
        for i in range(10):
            main.block(f"b{i}", insts=1)
        main.block("end", insts=1).halt()
        program = pb.build()
        blocks = [program.block_by_full_label(f"main:b{i}") for i in range(10)]

        buf = BranchHistoryBuffer(capacity)
        latest_live = {}
        for src_i, tgt_i in ops:
            entry = buf.insert(blocks[src_i], blocks[tgt_i])
            buf.hash_update(blocks[tgt_i], entry.seq)
            latest_live[blocks[tgt_i]] = entry.seq
            assert buf.live_entries <= capacity
        for target, seq in latest_live.items():
            found = buf.hash_lookup(target)
            # Either evicted (too old) or exactly the latest occurrence.
            if found is not None:
                assert found.seq == seq
                assert found.target is target


class TestCounterTableProperties:
    @COMMON
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 7)),
                    min_size=1, max_size=300))
    def test_peak_matches_bruteforce(self, ops):
        table = CounterTable()
        model = {}
        peak = 0
        for is_increment, key in ops:
            if is_increment:
                table.increment(key)
                model[key] = model.get(key, 0) + 1
            else:
                table.release(key)
                model.pop(key, None)
            peak = max(peak, len(model))
            assert table.live == len(model)
            for k, v in model.items():
                assert table.get(k) == v
        assert table.peak == peak


class TestMarkingProperties:
    @COMMON
    @given(small_programs(), st.integers(2, 6), st.integers(0, 1000))
    def test_marking_equals_bruteforce_reachability(self, program_seed, n_paths, pick):
        program, seed = program_seed
        paths = []
        engine_steps = list(islice(
            ExecutionEngine(program, seed=seed, max_steps=400).run(), 300
        ))
        if len(engine_steps) < 10:
            return
        blocks = [s.block for s in engine_steps]
        entrance = blocks[0]
        chunk = max(3, len(blocks) // n_paths)
        for i in range(n_paths):
            prefix = blocks[: chunk * (i + 1)]
            paths.append(prefix)
        cfg = build_observed_cfg(entrance, paths)

        nodes = sorted(cfg.trace_counts, key=lambda b: b.require_address())
        marked = {nodes[pick % len(nodes)], entrance}
        result = mark_rejoining_paths(cfg, marked)

        # Brute force: a block is marked iff some initially-marked block
        # is reachable from it.
        def reaches_marked(block):
            seen = set()
            frontier = [block]
            while frontier:
                current = frontier.pop()
                if current in marked:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                frontier.extend(cfg.successors.get(current, ()))
            return False

        expected = {b for b in cfg.trace_counts if reaches_marked(b)} | marked
        assert result.marked == expected
