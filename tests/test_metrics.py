"""Tests for the metrics package."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.metrics import (
    MetricReport,
    analyze_exit_domination,
    cover_set_size,
    executed_cycle_ratio,
    observed_trace_memory_fraction,
    safe_ratio,
    spanned_cycle_ratio,
)
from repro.system.simulator import simulate


@pytest.fixture
def fast_config():
    return SystemConfig(net_threshold=5, lei_threshold=4)


@pytest.fixture
def net_call_loop(call_loop_program, fast_config):
    return simulate(call_loop_program, "net", fast_config)


@pytest.fixture
def lei_call_loop(call_loop_program, fast_config):
    return simulate(call_loop_program, "lei", fast_config)


class TestCoverSet:
    def test_single_hot_region_covers_alone(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        assert cover_set_size(result) == 1

    def test_unreachable_fraction_returns_none(self, straight_line_program, fast_config):
        result = simulate(straight_line_program, "net", fast_config)
        # Nothing cached: 90% of execution can never be covered.
        assert cover_set_size(result) is None

    def test_lower_fraction_needs_fewer_regions(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        small = cover_set_size(result, 0.3)
        large = cover_set_size(result, 0.9)
        assert small is not None and large is not None
        assert small <= large

    def test_invalid_fraction_rejected(self, net_call_loop):
        with pytest.raises(ConfigError):
            cover_set_size(net_call_loop, 0.0)
        with pytest.raises(ConfigError):
            cover_set_size(net_call_loop, 1.5)

    def test_lei_cover_set_not_larger_on_cycle_workload(
        self, net_call_loop, lei_call_loop
    ):
        net_cover = cover_set_size(net_call_loop)
        lei_cover = cover_set_size(lei_call_loop)
        assert lei_cover is not None and net_cover is not None
        assert lei_cover <= net_cover


class TestCycleRatios:
    def test_lei_spans_the_interprocedural_cycle_net_cannot(
        self, net_call_loop, lei_call_loop
    ):
        assert spanned_cycle_ratio(net_call_loop) == 0.0
        assert spanned_cycle_ratio(lei_call_loop) == 1.0

    def test_executed_cycle_ratio_tracks_spanning(self, net_call_loop, lei_call_loop):
        assert executed_cycle_ratio(lei_call_loop) > executed_cycle_ratio(net_call_loop)
        assert executed_cycle_ratio(lei_call_loop) > 0.9

    def test_empty_run_ratios_are_zero(self, straight_line_program, fast_config):
        result = simulate(straight_line_program, "net", fast_config)
        assert spanned_cycle_ratio(result) == 0.0
        assert executed_cycle_ratio(result) == 0.0


class TestExitDomination:
    def test_net_helper_trace_dominates_loop_trace(self, net_call_loop):
        """In the Figure 2 scenario the trace at A begins at the exit of
        the trace at E (its only executed outside predecessor is D, the
        E-trace's last block), so it is exit-dominated."""
        report = analyze_exit_domination(net_call_loop)
        assert report.dominated_count == 1
        dominated = next(iter(report.dominators))
        assert dominated.entry.label == "A"
        dominator = next(iter(report.dominators[dominated]))
        assert dominator.entry.label == "E"

    def test_single_region_cannot_be_dominated(self, lei_call_loop):
        report = analyze_exit_domination(lei_call_loop)
        assert report.dominated_count == 0
        assert report.duplication_fraction == 0.0

    def test_duplication_counts_shared_blocks(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        report = analyze_exit_domination(result)
        # The A-trace duplicates B (owned by the earlier B-trace); if A
        # is dominated, B's instructions count as duplication.
        if report.dominated_count:
            assert report.duplicated_instructions >= 0
        assert 0.0 <= report.duplication_fraction <= 1.0

    def test_selection_order_matters(self, net_call_loop):
        report = analyze_exit_domination(net_call_loop)
        for dominated, dominators in report.dominators.items():
            for dominator in dominators:
                assert dominator.selection_order < dominated.selection_order


class TestMemoryMetrics:
    def test_observed_memory_fraction_none_when_cache_empty(
        self, straight_line_program, fast_config
    ):
        result = simulate(straight_line_program, "net", fast_config)
        assert observed_trace_memory_fraction(result) is None

    def test_observed_memory_fraction_zero_for_plain(self, net_call_loop):
        assert observed_trace_memory_fraction(net_call_loop) == 0.0

    def test_observed_memory_fraction_positive_for_combined(
        self, diamond_program
    ):
        config = SystemConfig(
            net_threshold=10, combined_net_t_start=4,
            combine_t_prof=6, combine_t_min=3,
        )
        result = simulate(diamond_program, "combined-net", config)
        fraction = observed_trace_memory_fraction(result)
        assert fraction is not None and fraction > 0.0


class TestSafeRatioAndReport:
    def test_safe_ratio(self):
        assert safe_ratio(1, 2) == 0.5
        assert safe_ratio(1, 0) is None

    def test_metric_report_fields_consistent(self, net_call_loop):
        report = MetricReport.from_result(net_call_loop)
        assert report.program == "call_loop"
        assert report.selector == "net"
        assert report.region_count == len(net_call_loop.regions)
        assert report.code_expansion == net_call_loop.code_expansion
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.cover_set_90 is not None

    def test_metric_report_is_frozen(self, net_call_loop):
        report = MetricReport.from_result(net_call_loop)
        with pytest.raises(AttributeError):
            report.hit_rate = 2.0  # type: ignore[misc]
