"""Tests for the simulation service (repro.serve).

Covers the request schema, the three-tier resolution path (with the
single-flight coalescing contract the subsystem exists for), the HTTP
endpoints over a real loopback socket, the smoke check, and the CLI
startup error convention.
"""

import asyncio
import json
import socket

import pytest

from repro.cli import main
from repro.config import SystemConfig
from repro.errors import ServeError, StoreError
from repro.obs import CollectingSink, MetricsRegistry, Observer
from repro.serve import (
    CellRequest,
    ServerThread,
    ServiceClient,
    SimulationService,
    parse_cell_request,
    request_from_json,
    run_smoke,
)
from repro.store import ResultStore, cell_key

CELL = {"benchmark": "gzip", "selector": "net", "scale": 0.05, "seed": 1}


class TestProtocol:
    def test_minimal_request_gets_defaults(self):
        request = parse_cell_request({"benchmark": "gzip", "selector": "net"})
        assert request.scale == 1.0
        assert request.seed == 1
        assert request.config == SystemConfig()

    def test_request_key_matches_store_key(self):
        request = parse_cell_request(dict(CELL))
        expected = cell_key("gzip", "net", 0.05, 1, SystemConfig(),
                            code_version="v1")
        assert request.key("v1").digest == expected.digest

    def test_config_overrides_change_the_address(self):
        base = parse_cell_request(dict(CELL))
        tuned = parse_cell_request(
            {**CELL, "config": {"net_threshold": 40}}
        )
        assert tuned.config.net_threshold == 40
        assert tuned.key("v1").digest != base.key("v1").digest

    def test_non_object_body_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            parse_cell_request([1, 2])

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ServeError, match="slector"):
            parse_cell_request(
                {"benchmark": "gzip", "slector": "net"}
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(ServeError, match="missing required"):
            parse_cell_request({"benchmark": "gzip"})

    def test_unknown_benchmark_and_selector_rejected(self):
        with pytest.raises(ServeError, match="unknown benchmark"):
            parse_cell_request({"benchmark": "spice", "selector": "net"})
        with pytest.raises(ServeError, match="unknown selector"):
            parse_cell_request({"benchmark": "gzip", "selector": "hot3000"})

    @pytest.mark.parametrize("scale", [0, -1, "big", True, None])
    def test_bad_scale_rejected(self, scale):
        with pytest.raises(ServeError, match="scale"):
            parse_cell_request({**CELL, "scale": scale})

    @pytest.mark.parametrize("seed", [1.5, "one", True])
    def test_bad_seed_rejected(self, seed):
        with pytest.raises(ServeError, match="seed"):
            parse_cell_request({**CELL, "seed": seed})

    def test_unknown_config_field_rejected(self):
        with pytest.raises(ServeError, match="nett_threshold"):
            parse_cell_request({**CELL, "config": {"nett_threshold": 9}})

    def test_invalid_config_value_rejected(self):
        with pytest.raises(ServeError, match="invalid config override"):
            parse_cell_request({**CELL, "config": {"net_threshold": -5}})

    def test_config_must_be_an_object(self):
        with pytest.raises(ServeError, match="config must be an object"):
            parse_cell_request({**CELL, "config": [1]})

    def test_body_must_be_valid_json(self):
        with pytest.raises(ServeError, match="not valid JSON"):
            request_from_json(b'{"torn')


def _request(**overrides) -> CellRequest:
    data = dict(CELL)
    data.update(overrides)
    return parse_cell_request(data)


def _run_service(tmp_path, coro_factory, **service_kwargs):
    """Run an async scenario against a started service; returns its result."""
    service_kwargs.setdefault("workers", 1)
    service_kwargs.setdefault("code_version", "v1")

    async def scenario():
        store = ResultStore(str(tmp_path / "store"))
        service = SimulationService(store, **service_kwargs)
        await service.start()
        try:
            return await coro_factory(service)
        finally:
            await service.close()

    return asyncio.run(scenario())


class TestSingleFlight:
    def test_concurrent_identical_requests_share_one_job(self, tmp_path):
        sink = CollectingSink()
        n = 6

        async def scenario(service):
            return await asyncio.gather(
                *(service.resolve(_request()) for _ in range(n))
            ), service.stats

        results, stats = _run_service(
            tmp_path, scenario, observer=Observer(sink=sink)
        )
        # Exactly one job launched for all N requests — the coalescing
        # contract, verified by the job-engine launch count.
        assert stats.jobs_launched == 1
        assert stats.batches == 1
        sources = sorted(source for _, source, _ in results)
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == n - 1
        # Every waiter gets the same bit-identical report.
        reports = [report for report, _, _ in results]
        assert all(report == reports[0] for report in reports)
        digests = {digest for _, _, digest in results}
        assert len(digests) == 1
        assert len(sink.by_kind("serve_coalesced")) == n - 1

    def test_distinct_cells_batch_but_run_as_separate_jobs(self, tmp_path):
        requests = [_request(seed=seed) for seed in (1, 2, 3)]

        async def scenario(service):
            return await asyncio.gather(
                *(service.resolve(req) for req in requests)
            ), service.stats

        results, stats = _run_service(tmp_path, scenario)
        assert stats.jobs_launched == 3
        assert {source for _, source, _ in results} == {"computed"}
        assert len({digest for _, _, digest in results}) == 3

    def test_request_after_resolution_is_a_warm_store_hit(self, tmp_path):
        async def scenario(service):
            first = await service.resolve(_request())
            second = await service.resolve(_request())
            return first, second, service.stats

        first, second, stats = _run_service(tmp_path, scenario)
        assert first[1] == "computed"
        assert second[1] == "store"
        assert stats.jobs_launched == 1
        assert first[0] == second[0]

    def test_resolve_before_start_rejected(self, tmp_path):
        service = SimulationService(ResultStore(str(tmp_path / "store")))
        with pytest.raises(ServeError, match="not running"):
            asyncio.run(service.resolve(_request()))

    def test_double_start_rejected(self, tmp_path):
        async def scenario():
            service = SimulationService(ResultStore(str(tmp_path / "s")))
            await service.start()
            try:
                with pytest.raises(ServeError, match="already started"):
                    await service.start()
            finally:
                await service.close()

        asyncio.run(scenario())


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-store")
    observer = Observer(metrics=MetricsRegistry())
    with ServerThread(str(root), observer=observer, workers=1) as handle:
        with ServiceClient("127.0.0.1", handle.port) as client:
            yield handle, client


class TestHttpEndpoints:
    def test_simulate_cold_then_warm(self, server):
        handle, client = server
        cold, _ = client.simulate(**CELL)
        assert cold["status"] == "ok"
        assert cold["source"] == "computed"
        assert cold["cell"]["benchmark"] == "gzip"
        assert len(cold["digest"]) == 64
        warm, _ = client.simulate(**CELL)
        assert warm["source"] == "store"
        assert warm["report"] == cold["report"]
        assert warm["digest"] == cold["digest"]

    def test_cell_lookup_by_digest(self, server):
        handle, client = server
        body, _ = client.simulate(**CELL)
        status, payload = client.request("GET", f"/v1/cell/{body['digest']}")
        assert status == 200
        assert payload["digest"] == body["digest"]
        assert payload["key"]["benchmark"] == "gzip"
        assert payload["report"] == body["report"]

    def test_cell_lookup_unknown_digest_404(self, server):
        handle, client = server
        status, payload = client.request("GET", "/v1/cell/" + "0" * 64)
        assert status == 404
        assert payload["status"] == "error"

    def test_cell_lookup_bad_digest_400(self, server):
        handle, client = server
        status, payload = client.request("GET", "/v1/cell/not-a-digest")
        assert status == 400
        assert "sha256" in payload["error"]

    def test_healthz(self, server):
        handle, client = server
        status, payload = client.request("GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "inflight": 0}

    def test_stats_reports_resolution_paths(self, server):
        handle, client = server
        client.simulate(**CELL)
        status, payload = client.request("GET", "/v1/stats")
        assert status == 200
        service = payload["service"]
        assert service["requests"] >= 1
        assert service["warm_hits"] >= 1
        assert payload["store"]["puts"] >= 1

    def test_metrics_exposition(self, server):
        handle, client = server
        client.simulate(**CELL)
        text = client.metrics_text()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert 'path="/v1/simulate"' in text
        assert "repro_serve_latency_seconds_bucket" in text
        assert 'source="store"' in text

    def test_metrics_path_cardinality_is_collapsed(self, server):
        handle, client = server
        body, _ = client.simulate(**CELL)
        client.request("GET", f"/v1/cell/{body['digest']}")
        text = client.metrics_text()
        assert 'path="/v1/cell/:digest"' in text
        assert body["digest"] not in text

    def test_invalid_cell_is_a_400(self, server):
        handle, client = server
        status, payload = client.request(
            "POST", "/v1/simulate", {"benchmark": "gzip"}
        )
        assert status == 400
        assert payload["status"] == "error"
        assert "selector" in payload["error"]

    def test_unknown_route_is_a_404(self, server):
        handle, client = server
        status, payload = client.request("GET", "/v1/nope")
        assert status == 404

    def test_wrong_method_is_a_405(self, server):
        handle, client = server
        status, _ = client.request("GET", "/v1/simulate")
        assert status == 405
        status, _ = client.request("POST", "/healthz", {})
        assert status == 405

    def test_malformed_http_is_a_400(self, server):
        handle, client = server
        with socket.create_connection(("127.0.0.1", handle.port)) as raw:
            raw.sendall(b"NOT A REQUEST\r\n\r\n")
            response = raw.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_bad_json_body_is_a_400(self, server):
        handle, client = server
        with socket.create_connection(("127.0.0.1", handle.port)) as raw:
            body = b'{"torn'
            raw.sendall(
                b"POST /v1/simulate HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: %d\r\n\r\n%s"
                % (len(body), body)
            )
            response = raw.recv(65536)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"not valid JSON" in response


class TestServerThreadStartup:
    def test_port_in_use_raises_in_caller(self, tmp_path):
        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        try:
            port = holder.getsockname()[1]
            with pytest.raises(OSError):
                ServerThread(str(tmp_path / "s"), port=port).start()
        finally:
            holder.close()

    def test_bad_store_root_raises_in_caller(self, tmp_path):
        file_path = tmp_path / "not-a-dir"
        file_path.write_text("x")
        with pytest.raises(StoreError, match="not a directory"):
            ServerThread(str(file_path)).start()


class TestSmoke:
    def test_smoke_contract_and_latency_artifact(self, tmp_path):
        out = tmp_path / "latency.json"
        record = run_smoke(latency_out=str(out), warm_requests=3)
        assert record["service"]["jobs_launched"] == 1
        assert record["warm_p50_ms"] < record["cold_ms"]
        written = json.loads(out.read_text())
        assert written["digest"] == record["digest"]
        assert written["warm_requests"] == 3


class TestServeCli:
    def test_smoke_flag_runs_and_reports(self, tmp_path, capsys):
        out = tmp_path / "lat.json"
        assert main(["serve", "--smoke", "--latency-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "smoke ok" in printed
        assert "1 job launched" in printed
        assert out.exists()

    def test_bad_store_path_is_one_line_error(self, tmp_path, capsys):
        file_path = tmp_path / "store-file"
        file_path.write_text("x")
        assert main(["serve", "--store", str(file_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_port_in_use_is_one_line_error(self, tmp_path, capsys):
        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        try:
            port = holder.getsockname()[1]
            code = main([
                "serve", "--port", str(port),
                "--store", str(tmp_path / "store"),
            ])
        finally:
            holder.close()
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot bind")
        assert len(err.strip().splitlines()) == 1
