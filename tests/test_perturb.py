"""Tests for the workload perturbation tools."""

import pytest

from repro.behavior.models import Bernoulli, LoopTrip
from repro.errors import ConfigError
from repro.execution.engine import ExecutionEngine
from repro.isa.opcodes import BranchKind
from repro.workloads import build_benchmark
from repro.workloads.perturb import build_perturbed_benchmark, perturb_program


def cond_models(program):
    return [
        block.terminator.model
        for block in program.blocks
        if block.terminator.kind is BranchKind.COND
    ]


class TestPerturbProgram:
    def test_rewrites_models_in_place(self):
        program = build_benchmark("gzip", scale=0.05)
        before = [
            (m.probability if isinstance(m, Bernoulli) else m.trips)
            for m in cond_models(program)
            if isinstance(m, (Bernoulli, LoopTrip))
        ]
        rewritten = perturb_program(program, seed=3)
        after = [
            (m.probability if isinstance(m, Bernoulli) else m.trips)
            for m in cond_models(program)
            if isinstance(m, (Bernoulli, LoopTrip))
        ]
        assert rewritten == len(before)
        assert before != after

    def test_deterministic_in_seed(self):
        a = build_benchmark("mcf", scale=0.05)
        b = build_benchmark("mcf", scale=0.05)
        perturb_program(a, seed=9)
        perturb_program(b, seed=9)
        probs_a = [m.probability for m in cond_models(a) if isinstance(m, Bernoulli)]
        probs_b = [m.probability for m in cond_models(b) if isinstance(m, Bernoulli)]
        assert probs_a == probs_b

    def test_biases_stay_in_safe_range(self):
        program = build_benchmark("twolf", scale=0.05)
        perturb_program(program, seed=1, bias_jitter=0.49)
        for model in cond_models(program):
            if isinstance(model, Bernoulli):
                assert 0.02 <= model.probability <= 0.98

    def test_loops_stay_loops(self):
        program = build_benchmark("bzip2", scale=0.05)
        perturb_program(program, seed=2, trip_scale_range=0.9)
        for model in cond_models(program):
            if isinstance(model, LoopTrip):
                assert model.trips >= 2
                assert model.jitter < model.trips

    def test_parameter_validation(self):
        program = build_benchmark("gzip", scale=0.05)
        with pytest.raises(ConfigError):
            perturb_program(program, seed=1, bias_jitter=0.5)
        with pytest.raises(ConfigError):
            perturb_program(program, seed=1, trip_scale_range=1.0)


class TestBuildPerturbed:
    def test_seed_zero_is_the_baseline(self):
        baseline = build_benchmark("gzip", scale=0.05)
        unperturbed = build_perturbed_benchmark("gzip", 0, scale=0.05)
        steps_a = [(s.block.label, s.taken)
                   for s in ExecutionEngine(baseline, seed=1, max_steps=3000).run()]
        steps_b = [(s.block.label, s.taken)
                   for s in ExecutionEngine(unperturbed, seed=1, max_steps=3000).run()]
        assert steps_a == steps_b

    def test_perturbed_variant_still_runs_to_completion(self):
        program = build_perturbed_benchmark("eon", 7, scale=0.05)
        engine = ExecutionEngine(program, seed=1)
        steps = sum(1 for _ in engine.run())
        assert 0 < steps < engine.max_steps

    def test_structure_unchanged_by_perturbation(self):
        baseline = build_benchmark("parser", scale=0.05)
        perturbed = build_perturbed_benchmark("parser", 5, scale=0.05)
        assert baseline.block_count == perturbed.block_count
        assert [b.label for b in baseline.blocks] == [
            b.label for b in perturbed.blocks
        ]
