"""Behavioural tests for trace combination (Section 4), incl. Figure 4."""

import pytest

from repro.cache.region import CFGRegion, TraceRegion
from repro.config import SystemConfig
from repro.system.simulator import simulate


def region_labels(region):
    return sorted(block.label for block in region.block_list)


@pytest.fixture
def fast_config():
    """Scaled-down thresholds preserving the paper's relationships:
    T_start + T_prof equals the base selector's threshold."""
    return SystemConfig(
        net_threshold=10,
        lei_threshold=8,
        combine_t_prof=6,
        combine_t_min=3,
        combined_net_t_start=4,
        combined_lei_t_start=2,
    )


class TestFigure4UnbiasedBranch:
    """Figure 4: an unbiased branch splits NET into two traces with a
    duplicated tail; combination selects one region with both paths."""

    def test_plain_net_duplicates_the_join_tail(self, diamond_program, fast_config):
        result = simulate(diamond_program, "net", fast_config)
        d_copies = sum(
            1 for region in result.regions
            for block in region.block_list if block.label == "D"
        )
        assert d_copies >= 2

    def test_combined_net_selects_multipath_region(self, diamond_program, fast_config):
        result = simulate(diamond_program, "combined-net", fast_config)
        cfg_regions = [r for r in result.regions if isinstance(r, CFGRegion)]
        assert cfg_regions, "combination never formed a CFG region"
        main = next(r for r in cfg_regions if r.entry.label == "A")
        labels = region_labels(main)
        # Both sides of the unbiased branch live in one region...
        assert "B" in labels and "C" in labels
        # ...and the join tail D appears exactly once.
        assert labels.count("D") == 1

    def test_combined_region_contains_biased_side_only_when_executed(
        self, diamond_program, fast_config
    ):
        result = simulate(diamond_program, "combined-net", fast_config)
        main = next(
            r for r in result.regions
            if isinstance(r, CFGRegion) and r.entry.label == "A"
        )
        # F (90% side) must be in; E (10%) is on a rejoining path, so it
        # may be included only if observed at least once.
        assert "F" in region_labels(main)

    def test_combination_reduces_region_transitions(self, diamond_program, fast_config):
        plain = simulate(diamond_program, "net", fast_config)
        combined = simulate(diamond_program, "combined-net", fast_config)
        assert combined.region_transitions < plain.region_transitions

    def test_combination_reduces_code_duplication(self, diamond_program, fast_config):
        plain = simulate(diamond_program, "net", fast_config)
        combined = simulate(diamond_program, "combined-net", fast_config)
        assert combined.code_expansion <= plain.code_expansion
        assert combined.exit_stubs < plain.exit_stubs


class TestDominantPathStaysATrace:
    """Section 2.2: with a single dominant path, a combined region must
    contain just that path — combination must not inflate regions."""

    def test_single_path_region_equals_trace(self, simple_loop_program, fast_config):
        plain = simulate(simple_loop_program, "lei", fast_config)
        combined = simulate(simple_loop_program, "combined-lei", fast_config)
        assert combined.region_count == plain.region_count == 1
        assert region_labels(combined.regions[0]) == region_labels(plain.regions[0])

    def test_interprocedural_cycle_combined_lei(self, call_loop_program, fast_config):
        combined = simulate(call_loop_program, "combined-lei", fast_config)
        assert combined.region_count == 1
        region = combined.regions[0]
        assert isinstance(region, CFGRegion)
        assert region.spans_cycle
        assert region_labels(region) == ["A", "B", "D", "E", "F"]
        assert combined.region_transitions == 0


class TestProfilingWindow:
    def test_selection_happens_after_same_total_executions(self, simple_loop_program):
        """T_start + T_prof executions must match the plain threshold, so
        combined selectors go hot no later than plain ones (LEI's
        synchronous observations make the timing exact)."""
        plain_config = SystemConfig(lei_threshold=8)
        combined_config = SystemConfig(
            lei_threshold=8, combined_lei_t_start=2, combine_t_prof=6,
            combine_t_min=3,
        )
        plain = simulate(simple_loop_program, "lei", plain_config)
        combined = simulate(simple_loop_program, "combined-lei", combined_config)
        assert plain.stats.interp_instructions == combined.stats.interp_instructions

    def test_observed_trace_memory_tracked(self, diamond_program, fast_config):
        result = simulate(diamond_program, "combined-net", fast_config)
        assert result.peak_observed_trace_bytes > 0

    def test_plain_selectors_report_zero_observed_memory(self, diamond_program, fast_config):
        assert simulate(diamond_program, "net", fast_config).peak_observed_trace_bytes == 0
        assert simulate(diamond_program, "lei", fast_config).peak_observed_trace_bytes == 0

    def test_observed_memory_freed_after_combination(self, diamond_program, fast_config):
        from repro.cache.codecache import CodeCache
        from repro.selection.combining import CombinedNETSelector
        from repro.execution.engine import ExecutionEngine
        from repro.system.simulator import Simulator

        simulator = Simulator(diamond_program, "combined-net", fast_config)
        simulator.run(ExecutionEngine(diamond_program).run())
        selector = simulator.selector
        assert isinstance(selector, CombinedNETSelector)
        # Whatever remains in flight is only for targets that never
        # finished profiling; completed targets were popped.
        assert selector.store.current_bytes <= selector.store.peak_bytes

    def test_diagnostics_expose_combination_counts(self, diamond_program, fast_config):
        result = simulate(diamond_program, "combined-net", fast_config)
        diag = result.selector_diagnostics
        assert diag["regions_combined"] >= 1
        assert diag["traces_observed"] >= fast_config.combine_t_prof


class TestTminFiltering:
    def test_rare_blocks_pruned_without_rejoin(self, fast_config):
        """A rarely-taken side exit that never rejoins must be pruned
        from the combined region."""
        from repro.behavior.models import Bernoulli, LoopTrip
        from repro.program.builder import ProgramBuilder

        pb = ProgramBuilder("rare_exit")
        main = pb.procedure("main")
        main.block("head", insts=2).cond("rare", model=Bernoulli(0.02))
        main.block("body", insts=4)
        main.block("latch", insts=1).cond("head", model=LoopTrip(300))
        main.block("done", insts=1).halt()
        main.block("rare", insts=6).jump("latch")
        program = pb.build()

        result = simulate(program, "combined-net", fast_config, seed=5)
        heads = {r.entry.label: r for r in result.regions}
        assert "head" in heads
        # "rare" rejoins at latch, so *if observed* it may be kept; but
        # with p=0.02 over a 6-trace window it is almost surely absent.
        labels = region_labels(heads["head"])
        assert "body" in labels and "latch" in labels

    def test_tmin_greater_than_tprof_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="combine_t_min"):
            SystemConfig(combine_t_prof=3, combine_t_min=5)
