"""Tests for the bounded code cache extension.

The paper argues (Section 2.3) that its algorithms "should help improve
the performance of dynamic optimization systems with bounded code
caches, because our algorithms reduce code duplication and produce
fewer cached regions.  This improves memory performance, reduces the
overhead of cache management, and regenerates fewer evicted regions."
These tests make that argument executable.
"""

import pytest

from repro.cache.codecache import BoundedCodeCache, CodeCache, make_cache
from repro.cache.region import TraceRegion
from repro.cache.sizing import STUB_BYTES
from repro.config import SystemConfig
from repro.errors import CacheError, ConfigError
from repro.system.simulator import simulate
from repro.workloads import build_benchmark


def B(program, label):
    return program.block_by_full_label(label)


@pytest.fixture
def regions(diamond_program):
    """Five small distinct regions to fill caches with."""
    labels = ["A", "B", "C", "D", "E"]
    return [TraceRegion([B(diamond_program, f"main:{label}")]) for label in labels]


class TestMakeCache:
    def test_none_capacity_gives_unbounded(self):
        assert type(make_cache(None)) is CodeCache

    def test_capacity_gives_bounded(self):
        cache = make_cache(1024, "fifo")
        assert isinstance(cache, BoundedCodeCache)
        assert cache.policy == "fifo"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CacheError):
            BoundedCodeCache(0)
        with pytest.raises(CacheError):
            BoundedCodeCache(100, policy="lru")
        with pytest.raises(ConfigError):
            SystemConfig(cache_eviction_policy="lru")
        with pytest.raises(ConfigError):
            SystemConfig(cache_capacity_bytes=0)


class TestFifoEviction:
    def test_oldest_evicted_first(self, regions):
        size = regions[0].instruction_bytes + STUB_BYTES * regions[0].exit_stub_count
        cache = BoundedCodeCache(capacity_bytes=3 * size + 1, policy="fifo")
        for region in regions[:4]:
            cache.insert(region)
        assert not cache.contains_entry(regions[0].entry)  # evicted
        assert cache.contains_entry(regions[3].entry)
        assert cache.evictions >= 1

    def test_regions_list_keeps_evicted_work(self, regions):
        cache = BoundedCodeCache(capacity_bytes=40, policy="fifo")
        for region in regions:
            cache.insert(region)
        assert cache.region_count == 5  # all selections are optimizer work
        assert cache.resident_count < 5

    def test_regeneration_detected(self, regions, diamond_program):
        size = regions[0].instruction_bytes + STUB_BYTES * regions[0].exit_stub_count
        cache = BoundedCodeCache(capacity_bytes=2 * size + 1, policy="fifo")
        cache.insert(regions[0])
        cache.insert(regions[1])
        cache.insert(regions[2])  # evicts regions[0]
        again = TraceRegion([B(diamond_program, "main:A")])
        cache.insert(again)  # same entry as regions[0]
        assert cache.regenerations == 1


class TestFlushEviction:
    def test_flush_empties_everything(self, regions):
        size = regions[0].instruction_bytes + STUB_BYTES * regions[0].exit_stub_count
        cache = BoundedCodeCache(capacity_bytes=2 * size + 1, policy="flush")
        cache.insert(regions[0])
        cache.insert(regions[1])
        cache.insert(regions[2])  # triggers flush, then inserts
        assert cache.flushes == 1
        assert cache.evictions == 2
        assert cache.resident_count == 1
        assert cache.contains_entry(regions[2].entry)

    def test_oversized_region_still_inserts_alone(self, regions):
        cache = BoundedCodeCache(capacity_bytes=1, policy="flush")
        cache.insert(regions[0])
        assert cache.resident_count == 1


class TestBoundedSimulation:
    @pytest.fixture(scope="class")
    def capacity(self):
        # Just below the ~1.2 KiB the NET run needs on this workload:
        # the near-fit regime the paper's Section 2.3 argument is about
        # (under extreme thrash both algorithms regenerate constantly
        # and the ordering is noise).
        return 1000

    def _run(self, selector, capacity, policy="fifo"):
        program = build_benchmark("eon", scale=0.3)
        config = SystemConfig(
            cache_capacity_bytes=capacity, cache_eviction_policy=policy
        )
        return simulate(program, selector, config, seed=1)

    def test_bounded_run_evicts_and_regenerates(self, capacity):
        result = self._run("net", capacity)
        assert result.cache_evictions > 0
        assert result.regenerated_regions > 0
        assert result.total_instructions_executed > 0

    def test_unbounded_run_never_evicts(self):
        program = build_benchmark("eon", scale=0.3)
        result = simulate(program, "net", SystemConfig(), seed=1)
        assert result.cache_evictions == 0
        assert result.cache_flushes == 0
        assert result.regenerated_regions == 0

    def test_lei_regenerates_no_more_than_net(self, capacity):
        """The paper's Section 2.3 prediction: less duplication and fewer
        regions mean fewer regenerated regions under pressure."""
        net = self._run("net", capacity)
        lei = self._run("lei", capacity)
        assert lei.regenerated_regions <= net.regenerated_regions
        # Fewer regenerations shows up as more execution from the cache.
        assert lei.hit_rate >= net.hit_rate

    def test_flush_policy_runs(self, capacity):
        result = self._run("net", capacity, policy="flush")
        assert result.cache_flushes > 0

    def test_tighter_capacity_more_evictions(self):
        loose = self._run("net", 1200)
        tight = self._run("net", 250)
        assert tight.cache_evictions >= loose.cache_evictions

    def test_hit_rate_degrades_gracefully_under_pressure(self, capacity):
        bounded = self._run("net", capacity)
        program = build_benchmark("eon", scale=0.3)
        unbounded = simulate(program, "net", SystemConfig(), seed=1)
        assert bounded.hit_rate <= unbounded.hit_rate + 1e-9
        assert bounded.hit_rate > 0.3  # still mostly cached
