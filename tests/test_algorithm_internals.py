"""White-box tests of the selection algorithm internals.

These drive FORM-TRACE, the NET recorder, and the combining machinery
directly (no simulator), pinning the paper's pseudocode behaviour
branch by branch.
"""

import pytest

from repro.behavior.models import Bernoulli, LoopTrip
from repro.cache.codecache import CodeCache
from repro.cache.region import TraceRegion
from repro.config import SystemConfig
from repro.errors import ReproError
from repro.execution.events import Step
from repro.program.builder import ProgramBuilder
from repro.selection.history import BranchHistoryBuffer
from repro.selection.lei import form_trace
from repro.selection.net import TraceRecorder


@pytest.fixture
def program():
    """helper (low) + main loop, same shape as the Figure 2 fixture."""
    pb = ProgramBuilder("internals", entry="main")
    helper = pb.procedure("helper")
    helper.block("E", insts=4)
    helper.block("F", insts=2).ret()
    main = pb.procedure("main")
    main.block("A", insts=3)
    main.block("B", insts=2).call("helper")
    main.block("D", insts=2).cond("A", model=LoopTrip(50))
    main.block("done", insts=1).halt()
    return pb.build()


def blocks_of(program, *labels):
    return [program.block_by_full_label(label) for label in labels]


class TestFormTrace:
    def _buffer_with_cycle(self, program):
        """Build the buffer state after one full loop iteration plus the
        cycle-closing branch B->E ... D->A, B->E."""
        a, b, d, e, f = blocks_of(
            program, "main:A", "main:B", "main:D", "helper:E", "helper:F"
        )
        buf = BranchHistoryBuffer(16)
        old = buf.insert(b, e)          # first occurrence of E
        buf.hash_update(e, old.seq)
        buf.insert(f, d)
        buf.insert(d, a)
        buf.insert(b, e)                # cycle closes at E
        return buf, old, (a, b, d, e, f)

    def test_reconstructs_full_interprocedural_cycle(self, program):
        buf, old, (a, b, d, e, f) = self._buffer_with_cycle(program)
        formed = form_trace(buf, e, old.seq, CodeCache(), SystemConfig())
        assert formed is not None
        assert list(formed.blocks) == [e, f, d, a, b]
        assert formed.final_target is e  # spans the cycle

    def test_stops_at_existing_region_entry(self, program):
        buf, old, (a, b, d, e, f) = self._buffer_with_cycle(program)
        cache = CodeCache()
        cache.insert(TraceRegion([d]))  # D already owns a region
        formed = form_trace(buf, e, old.seq, cache, SystemConfig())
        assert formed is not None
        assert list(formed.blocks) == [e, f]
        assert formed.final_target is d  # ends just before the region

    def test_size_limit_cuts_without_cycle(self, program):
        buf, old, (a, b, d, e, f) = self._buffer_with_cycle(program)
        config = SystemConfig(max_trace_blocks=3)
        formed = form_trace(buf, e, old.seq, CodeCache(), config)
        assert formed is not None
        assert len(formed.blocks) == 3
        assert formed.final_target is None

    def test_gap_in_buffer_aborts(self, program):
        """A branch whose source is unreachable by fall-through from the
        previous target must abort, not fabricate a path."""
        a, b, d, e, f = blocks_of(
            program, "main:A", "main:B", "main:D", "helper:E", "helper:F"
        )
        buf = BranchHistoryBuffer(16)
        old = buf.insert(b, e)
        buf.hash_update(e, old.seq)
        # Missing the F->D return: next branch claims src D, but the
        # fall-through walk from E must cross F (a return, cannot fall
        # through) to reach it.
        buf.insert(d, a)
        buf.insert(b, e)
        formed = form_trace(buf, e, old.seq, CodeCache(), SystemConfig())
        assert formed is None

    def test_single_branch_self_cycle(self, program):
        a = program.block_by_full_label("main:A")
        pb2 = ProgramBuilder("selfloop")
        main = pb2.procedure("main")
        main.block("H", insts=2).cond("H", model=LoopTrip(5))
        main.block("end", insts=1).halt()
        p2 = pb2.build()
        h = p2.block_by_full_label("main:H")
        buf = BranchHistoryBuffer(8)
        old = buf.insert(h, h)
        buf.hash_update(h, old.seq)
        buf.insert(h, h)
        formed = form_trace(buf, h, old.seq, CodeCache(), SystemConfig())
        assert formed is not None
        assert list(formed.blocks) == [h]
        assert formed.final_target is h


class TestTraceRecorder:
    def test_diverged_start_abandons(self, program):
        a, b = blocks_of(program, "main:A", "main:B")
        recorder = TraceRecorder(head=b)
        # First fed step executes A, not the head B.
        done = recorder.feed(Step(a, False, b), CodeCache(), SystemConfig())
        assert done
        assert recorder.blocks == []

    def test_stream_end_keeps_partial_trace(self, program):
        a, b = blocks_of(program, "main:A", "main:B")
        recorder = TraceRecorder(head=a)
        done = recorder.feed(Step(a, False, None), CodeCache(), SystemConfig())
        assert done
        assert recorder.blocks == [a]
        assert recorder.final_target is None

    def test_stops_with_backward_branch_included(self, program):
        a, b, d, e, f = blocks_of(
            program, "main:A", "main:B", "main:D", "helper:E", "helper:F"
        )
        recorder = TraceRecorder(head=e)
        cache = CodeCache()
        config = SystemConfig()
        assert not recorder.feed(Step(e, False, f), cache, config)
        # F returns forward to D: trace continues.
        assert not recorder.feed(Step(f, True, d), cache, config)
        # D branches backward to A: trace ends *with* D.
        assert recorder.feed(Step(d, True, a), cache, config)
        assert recorder.blocks == [e, f, d]
        assert recorder.final_target is a

    def test_instruction_limit(self, program):
        a, b = blocks_of(program, "main:A", "main:B")
        config = SystemConfig(max_trace_instructions=3)
        recorder = TraceRecorder(head=a)
        assert recorder.feed(Step(a, False, b), CodeCache(), config)
        assert recorder.blocks == [a]


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj not in (ReproError, Exception):
                    assert issubclass(obj, ReproError), name

    def test_simulator_rejects_foreign_region(self, program):
        """A selector returning a region whose entry is not the branch
        target is a contract violation the simulator must catch."""
        from repro.errors import SelectionError
        from repro.selection.base import RegionSelector
        from repro.selection.registry import SELECTOR_FACTORIES
        from repro.system.simulator import simulate

        class BrokenSelector(RegionSelector):
            name = "broken"

            def on_interpreted_taken(self, step):
                wrong_entry = step.block  # not the target!
                region = TraceRegion([wrong_entry])
                if not self.cache.contains_entry(wrong_entry):
                    self.cache.insert(region)
                return region

            @property
            def peak_counters(self):
                return 0

        SELECTOR_FACTORIES["broken"] = (
            lambda cache, config, program: BrokenSelector(cache, config)
        )
        try:
            with pytest.raises(SelectionError, match="returned a region"):
                simulate(program, "broken")
        finally:
            del SELECTOR_FACTORIES["broken"]
