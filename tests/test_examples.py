"""The example scripts must run and demonstrate what they claim."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False,
    )


class TestExamplesRun:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "gzip", "0.1")
        assert proc.returncode == 0, proc.stderr
        for selector in ("net", "lei", "combined-net", "combined-lei"):
            assert selector in proc.stdout

    def test_quickstart_rejects_unknown_benchmark(self):
        proc = run_example("quickstart.py", "notabench")
        assert proc.returncode != 0
        assert "unknown benchmark" in proc.stderr

    def test_interprocedural_cycle_shows_figure2(self):
        proc = run_example("interprocedural_cycle.py")
        assert proc.returncode == 0, proc.stderr
        assert "digraph" in proc.stdout          # CFG export
        assert "spans cycle" in proc.stdout      # the LEI ideal trace
        assert "region transitions: 0" in proc.stdout

    def test_nested_loops_shows_duplication_difference(self):
        proc = run_example("nested_loops.py")
        assert proc.returncode == 0, proc.stderr
        assert "copies of inner-loop head B in the cache: 2" in proc.stdout
        assert "copies of inner-loop head B in the cache: 1" in proc.stdout

    def test_unbiased_branch_shows_combination(self):
        proc = run_example("unbiased_branch.py")
        assert proc.returncode == 0, proc.stderr
        assert "CFG region" in proc.stdout
        assert "copies of join block D: 2" in proc.stdout  # plain NET
        assert "copies of join block D: 1" in proc.stdout  # combined

    def test_trace_collection_round_trips(self):
        proc = run_example("trace_collection.py")
        assert proc.returncode == 0, proc.stderr
        assert "identical" in proc.stdout

    def test_custom_selector_registers_and_runs(self):
        proc = run_example("custom_selector.py")
        assert proc.returncode == 0, proc.stderr
        assert "method" in proc.stdout

    def test_bounded_cache_sweep(self):
        proc = run_example("bounded_cache.py")
        assert proc.returncode == 0, proc.stderr
        assert "evictions" in proc.stdout
        assert "regenerate" in proc.stdout

    def test_performance_analysis(self):
        proc = run_example("performance_analysis.py", "0.1")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout
        assert "combined-lei relative to net" in proc.stdout
