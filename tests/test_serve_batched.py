"""Tests for the batched cold-dispatch backend of the service.

``SimulationService(backend="batched")`` runs each cold batch as one
(or more, grouped by config) vectorized fleets instead of job-engine
workers.  The resolution tiers, persist-before-settle ordering and —
above all — the reports themselves must be indistinguishable from the
serial job-engine path.
"""

import asyncio

import pytest

from repro.config import SystemConfig
from repro.errors import ServeError
from repro.metrics.summary import MetricReport
from repro.serve import CellRequest, SimulationService, parse_cell_request
from repro.store import ResultStore
from repro.system.simulator import simulate
from repro.workloads import build_benchmark

CELL = {"benchmark": "gzip", "selector": "net", "scale": 0.05, "seed": 1}


def _request(**overrides) -> CellRequest:
    data = dict(CELL)
    data.update(overrides)
    return parse_cell_request(data)


def _run_service(tmp_path, coro_factory, **service_kwargs):
    service_kwargs.setdefault("workers", 1)
    service_kwargs.setdefault("code_version", "v1")
    service_kwargs.setdefault("backend", "batched")

    async def scenario():
        store = ResultStore(str(tmp_path / "store"))
        service = SimulationService(store, **service_kwargs)
        await service.start()
        try:
            return await coro_factory(service)
        finally:
            await service.close()

    return asyncio.run(scenario())


def _direct_report(**overrides) -> MetricReport:
    data = dict(CELL)
    data.update(overrides)
    program = build_benchmark(data["benchmark"], scale=data["scale"])
    return MetricReport.from_result(
        simulate(program, data["selector"], seed=data["seed"])
    )


class TestBatchedResolution:
    def test_cold_cell_is_bit_identical_to_serial(self, tmp_path):
        async def scenario(service):
            return await service.resolve(_request())

        report, source, _ = _run_service(tmp_path, scenario)
        assert source == "computed"
        assert report == _direct_report()

    def test_burst_of_distinct_cells_is_one_fleet_batch(self, tmp_path):
        requests = [_request(seed=seed) for seed in (1, 2, 3, 4)]

        async def scenario(service):
            results = await asyncio.gather(
                *(service.resolve(req) for req in requests)
            )
            return results, service.stats

        results, stats = _run_service(tmp_path, scenario)
        assert stats.batches == 1
        assert {source for _, source, _ in results} == {"computed"}
        for request, (report, _, _) in zip(requests, results):
            assert report == _direct_report(seed=request.seed)

    def test_resolved_cell_becomes_a_warm_hit(self, tmp_path):
        async def scenario(service):
            first = await service.resolve(_request())
            second = await service.resolve(_request())
            return first, second, service.stats

        first, second, stats = _run_service(tmp_path, scenario)
        assert first[1] == "computed"
        assert second[1] == "store"
        assert first[0] == second[0]

    def test_identical_requests_coalesce(self, tmp_path):
        async def scenario(service):
            results = await asyncio.gather(
                *(service.resolve(_request()) for _ in range(4))
            )
            return results

        results = _run_service(tmp_path, scenario)
        sources = sorted(source for _, source, _ in results)
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == 3
        assert len({report for report, _, _ in results}) == 1

    def test_mixed_configs_split_into_per_config_fleets(self, tmp_path):
        tuned = _request(config={"net_threshold": 40})
        assert tuned.config != SystemConfig()

        async def scenario(service):
            return await asyncio.gather(
                service.resolve(_request()), service.resolve(tuned)
            )

        default_result, tuned_result = _run_service(tmp_path, scenario)
        assert default_result[0] == _direct_report()
        assert default_result[2] != tuned_result[2]
        # The tuned cell really simulated under its own config.
        program = build_benchmark(CELL["benchmark"], scale=CELL["scale"])
        expected = MetricReport.from_result(
            simulate(program, CELL["selector"], tuned.config,
                     seed=CELL["seed"])
        )
        assert tuned_result[0] == expected


class TestStreamingService:
    """The service's fleets stream through a bounded slot population."""

    def test_burst_streams_bit_identically_through_two_slots(self, tmp_path):
        requests = [_request(seed=seed) for seed in (1, 2, 3, 4, 5)]

        async def scenario(service):
            results = await asyncio.gather(
                *(service.resolve(req) for req in requests)
            )
            return results, service.stats

        results, stats = _run_service(tmp_path, scenario, fleet_max_lanes=2)
        assert stats.batches == 1
        for request, (report, source, _) in zip(requests, results):
            assert source == "computed"
            assert report == _direct_report(seed=request.seed)

    def test_fleet_max_lanes_validated_at_construction(self, tmp_path):
        with pytest.raises(ServeError, match="fleet_max_lanes"):
            SimulationService(ResultStore(str(tmp_path / "s")),
                              backend="batched", fleet_max_lanes=0)


class TestBatchedValidation:
    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="unknown service backend"):
            SimulationService(ResultStore(str(tmp_path / "s")),
                              backend="gpu")

    def test_batched_with_reference_pipeline_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="fast=False"):
            SimulationService(ResultStore(str(tmp_path / "s")),
                              backend="batched", fast=False)

    @pytest.mark.parametrize("backend", ["batched", "batched-python"])
    def test_named_substrates_accepted(self, tmp_path, backend):
        async def scenario(service):
            return await service.resolve(_request())

        report, source, _ = _run_service(tmp_path, scenario,
                                         backend=backend)
        assert source == "computed"
        assert report == _direct_report()
