"""Tests for the top-level CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_selectors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "twolf" in out
        assert "net" in out and "combined-lei" in out and "wiggins" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "gzip", "lei", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "region transitions" in out

    def test_run_with_bounded_cache_reports_evictions(self, capsys):
        code = main([
            "run", "eon", "net", "--scale", "0.2",
            "--cache-capacity", "600", "--eviction", "fifo",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache evictions" in out

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "spice", "net"])

    def test_unknown_selector_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "gzip", "hotpath3000"])


class TestRegionsAndDot:
    def test_regions_dump(self, capsys):
        assert main(["regions", "mcf", "lei", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "regions selected" in out
        assert "#0" in out

    def test_layout_map(self, capsys):
        assert main(["layout", "mcf", "net", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "code cache layout" in out
        assert "page" in out

    def test_dot_export(self, capsys):
        assert main(["dot", "gzip"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "main" in out


class TestCompareAndTimeline:
    def test_compare_prints_ratios(self, capsys):
        assert main(["compare", "mcf", "lei", "net", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "lei relative to net" in out
        assert "region_transitions" in out

    def test_timeline_prints_windows_and_warmup(self, capsys):
        assert main(["timeline", "gzip", "lei", "--scale", "0.05",
                     "--window", "5000"]) == 0
        out = capsys.readouterr().out
        assert "windowed hit rates" in out
        assert "warm" in out


class TestCollectReplay:
    def test_collect_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "bzip2.rtrc"
        assert main(["collect", "bzip2", "--scale", "0.05",
                     "-o", str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()

        assert main(["replay", str(trace), "combined-lei",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "replayed 'bzip2'" in out
        assert "hit rate" in out


class TestFleet:
    def test_streaming_run_prints_queue_progress(self, capsys):
        code = main(["fleet", "--benchmarks",
                     "micro:linked_chain,micro:self_loop",
                     "--selectors", "net", "--seeds", "3",
                     "--scale", "0.05", "--max-lanes", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "queue: 6 cells over 2 slots, 4 refills" in out
        assert "0 queued" in out  # the last admission drained the queue
        assert out.count("micro:linked_chain") == 3

    def test_full_width_run_prints_no_queue_line(self, capsys):
        code = main(["fleet", "--benchmarks", "micro:linked_chain",
                     "--selectors", "net", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "queue:" not in out

    def test_bad_max_lanes_is_a_one_line_error(self, capsys):
        code = main(["fleet", "--benchmarks", "micro:linked_chain",
                     "--selectors", "net", "--scale", "0.05",
                     "--max-lanes", "0"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error: max_lanes must be >= 1")


class TestErrorReporting:
    """Missing inputs fail with a one-line error, never a traceback."""

    def test_inspect_missing_events_file(self, tmp_path, capsys):
        code = main(["inspect", str(tmp_path / "nope.jsonl")])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error: no event log at")
        assert err.count("\n") == 1

    def test_inspect_directory_rejected(self, tmp_path, capsys):
        code = main(["inspect", str(tmp_path)])
        assert code == 2
        assert "no event log" in capsys.readouterr().err

    @staticmethod
    def _fake_run():
        return {
            "bench_version": 1,
            "quick": True,
            "workloads": [{
                "name": "gzip-net", "benchmark": "gzip", "selector": "net",
                "scale": 0.1, "seed": 1, "steps": 10, "wall_seconds": 0.01,
                "events_per_second": 1000.0, "phases": {},
            }],
            "totals": {"steps": 10, "wall_seconds": 0.01,
                       "events_per_second": 1000.0},
        }

    def test_bench_check_without_baseline(self, tmp_path, capsys,
                                          monkeypatch):
        import repro.bench

        monkeypatch.setattr(repro.bench, "run_bench",
                            lambda **kwargs: self._fake_run())
        code = main(["bench", "--quick", "--check",
                     "--baseline", str(tmp_path / "missing.json"),
                     "--out", str(tmp_path / "run.json")])
        err = capsys.readouterr().err
        assert code == 2
        assert "error: --check needs a baseline" in err

    def test_bench_check_with_missing_workload_entry(self, tmp_path, capsys,
                                                     monkeypatch):
        import json

        import repro.bench

        monkeypatch.setattr(repro.bench, "run_bench",
                            lambda **kwargs: self._fake_run())
        baseline = self._fake_run()
        baseline["workloads"][0]["name"] = "some-other-workload"
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        code = main(["bench", "--quick", "--check",
                     "--baseline", str(baseline_path),
                     "--out", str(tmp_path / "run.json")])
        err = capsys.readouterr().err
        assert code == 2
        assert "error: baseline has no comparable entry for: gzip-net" in err
