"""Tests for the top-level CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_selectors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "twolf" in out
        assert "net" in out and "combined-lei" in out and "wiggins" in out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "gzip", "lei", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "region transitions" in out

    def test_run_with_bounded_cache_reports_evictions(self, capsys):
        code = main([
            "run", "eon", "net", "--scale", "0.2",
            "--cache-capacity", "600", "--eviction", "fifo",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache evictions" in out

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "spice", "net"])

    def test_unknown_selector_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "gzip", "hotpath3000"])


class TestRegionsAndDot:
    def test_regions_dump(self, capsys):
        assert main(["regions", "mcf", "lei", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "regions selected" in out
        assert "#0" in out

    def test_layout_map(self, capsys):
        assert main(["layout", "mcf", "net", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "code cache layout" in out
        assert "page" in out

    def test_dot_export(self, capsys):
        assert main(["dot", "gzip"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "main" in out


class TestCompareAndTimeline:
    def test_compare_prints_ratios(self, capsys):
        assert main(["compare", "mcf", "lei", "net", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "lei relative to net" in out
        assert "region_transitions" in out

    def test_timeline_prints_windows_and_warmup(self, capsys):
        assert main(["timeline", "gzip", "lei", "--scale", "0.05",
                     "--window", "5000"]) == 0
        out = capsys.readouterr().out
        assert "windowed hit rates" in out
        assert "warm" in out


class TestCollectReplay:
    def test_collect_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "bzip2.rtrc"
        assert main(["collect", "bzip2", "--scale", "0.05",
                     "-o", str(trace)]) == 0
        assert trace.exists()
        capsys.readouterr()

        assert main(["replay", str(trace), "combined-lei",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "replayed 'bzip2'" in out
        assert "hit rate" in out
