"""Tests for trace collection and replay (the Pin substitute)."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.execution.engine import ExecutionEngine
from repro.program.builder import ProgramBuilder
from repro.tracing.collector import collect_trace, replay_trace, trace_header
from repro.tracing.decoder import TraceReader
from repro.tracing.encoder import TraceWriter
from repro.tracing.records import TraceHeader


class TestHeader:
    def test_round_trip(self):
        header = TraceHeader("bench.gcc", 1234, 42)
        decoded = TraceHeader.decode(io.BytesIO(header.encode()))
        assert decoded == header

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError, match="magic"):
            TraceHeader.decode(io.BytesIO(b"XXXX" + b"\x00" * 20))

    def test_truncated_header_rejected(self):
        with pytest.raises(TraceFormatError, match="truncated"):
            TraceHeader.decode(io.BytesIO(b"RT"))

    def test_unicode_name_round_trips(self):
        header = TraceHeader("bênch-λ", 5, 0)
        decoded = TraceHeader.decode(io.BytesIO(header.encode()))
        assert decoded.program_name == "bênch-λ"


class TestRoundTrip:
    def test_collect_then_replay_is_identical(self, diamond_program, tmp_path):
        path = tmp_path / "diamond.rtrc"
        engine = ExecutionEngine(diamond_program, seed=7)
        live = ExecutionEngine(diamond_program, seed=7).run_to_list()
        written = collect_trace(engine, path)
        assert written == len(live)
        replayed = list(replay_trace(path, diamond_program))
        assert replayed == live

    def test_header_readable_standalone(self, simple_loop_program, tmp_path):
        path = tmp_path / "loop.rtrc"
        collect_trace(ExecutionEngine(simple_loop_program, seed=3), path)
        header = trace_header(path)
        assert header.program_name == "loop"
        assert header.seed == 3
        assert header.block_count == simple_loop_program.block_count

    def test_large_stream_crosses_chunk_boundaries(self, tmp_path):
        # Enough steps that the reader must refill its chunk buffer.
        pb = ProgramBuilder("big")
        main = pb.procedure("main")
        from repro.behavior.models import LoopTrip

        main.block("head", insts=1).cond("head", model=LoopTrip(300_000))
        main.block("done", insts=1).halt()
        program = pb.build()
        path = tmp_path / "big.rtrc"
        written = collect_trace(ExecutionEngine(program), path)
        assert written == 300_001
        count = sum(1 for _ in replay_trace(path, program))
        assert count == written


class TestMismatchDetection:
    def test_wrong_program_name_rejected(self, straight_line_program, simple_loop_program, tmp_path):
        path = tmp_path / "straight.rtrc"
        collect_trace(ExecutionEngine(straight_line_program), path)
        with pytest.raises(TraceFormatError, match="recorded for program"):
            list(replay_trace(path, simple_loop_program))

    def test_wrong_block_count_rejected(self, straight_line_program, tmp_path):
        path = tmp_path / "straight.rtrc"
        collect_trace(ExecutionEngine(straight_line_program), path)
        # Same name, different structure.
        pb = ProgramBuilder("straight")
        main = pb.procedure("main")
        main.block("A").halt()
        other = pb.build()
        with pytest.raises(TraceFormatError, match="blocks"):
            list(replay_trace(path, other))

    def test_trailing_garbage_detected(self, straight_line_program, tmp_path):
        path = tmp_path / "garbage.rtrc"
        collect_trace(ExecutionEngine(straight_line_program), path)
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02")
        with pytest.raises(TraceFormatError):
            list(replay_trace(path, straight_line_program))

    def test_writer_rejects_use_after_close(self, straight_line_program, tmp_path):
        steps = ExecutionEngine(straight_line_program).run_to_list()
        path = tmp_path / "closed.rtrc"
        header = TraceHeader("straight", straight_line_program.block_count, 0)
        with open(path, "wb") as fh:
            writer = TraceWriter(fh, header)
            writer.write_step(steps[0])
            writer.close()
            with pytest.raises(TraceFormatError, match="closed"):
                writer.write_step(steps[1])
