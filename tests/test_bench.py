"""Tests for the perf-trajectory bench harness (repro.bench)."""

import json

import pytest

from repro.bench import (
    QUICK_WORKLOADS,
    STANDARD_WORKLOADS,
    BenchWorkload,
    compare_to_baseline,
    format_bench_table,
    load_baseline,
    regression_failures,
    run_bench,
    write_bench_run,
)
from repro.cli import main as cli_main

#: One tiny workload so harness tests don't re-simulate the pinned set.
TINY = (BenchWorkload("tiny-gzip-net", "gzip", "net", scale=0.05),)


@pytest.fixture(scope="module")
def tiny_run():
    return run_bench(workloads=TINY)


class TestWorkloadSets:
    def test_pinned_sets_are_parallel(self):
        assert [w.name for w in QUICK_WORKLOADS] == [
            w.name for w in STANDARD_WORKLOADS
        ]
        assert all(w.scale < s.scale
                   for w, s in zip(QUICK_WORKLOADS, STANDARD_WORKLOADS))

    def test_workload_names_are_unique(self):
        names = [w.name for w in STANDARD_WORKLOADS]
        assert len(names) == len(set(names))


class TestRunBench:
    def test_run_schema(self, tiny_run):
        assert tiny_run["bench_version"] == 1
        record = tiny_run["workloads"][0]
        assert record["name"] == "tiny-gzip-net"
        assert record["steps"] > 0
        assert record["wall_seconds"] > 0
        assert record["events_per_second"] > 0
        # Per-phase wall time from the obs profiler.
        assert set(record["phases"]) >= {"interpret", "selector_decide"}
        assert all(p["seconds"] >= 0 for p in record["phases"].values())
        assert tiny_run["totals"]["steps"] == record["steps"]

    def test_repeats_recorded(self, tiny_run):
        # Default is best-of-3; the record says how many passes ran.
        assert tiny_run["workloads"][0]["repeats"] == 3

    def test_single_repeat_run(self):
        run = run_bench(workloads=TINY, repeats=1)
        record = run["workloads"][0]
        assert record["repeats"] == 1
        assert record["steps"] > 0

    def test_behaviour_fingerprint_is_recorded(self, tiny_run):
        record = tiny_run["workloads"][0]
        assert 0 < record["hit_rate"] <= 1
        assert record["region_count"] > 0
        assert record["total_instructions"] > 0

    def test_write_and_reload(self, tiny_run, tmp_path):
        path = write_bench_run(tiny_run, str(tmp_path / "BENCH_run.json"))
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["workloads"][0]["name"] == "tiny-gzip-net"


class TestBaselineComparison:
    def test_identical_runs_compare_flat(self, tiny_run):
        deltas = compare_to_baseline(tiny_run, tiny_run)
        assert deltas["comparable"]
        ratios = deltas["workloads"]["tiny-gzip-net"]
        assert ratios["events_per_second_ratio"] == 1.0
        assert ratios["wall_ratio"] == 1.0
        assert regression_failures(deltas) == []

    def test_scale_mismatch_is_skipped_not_compared(self, tiny_run):
        other = json.loads(json.dumps(tiny_run))
        other["workloads"][0]["scale"] = 0.5
        deltas = compare_to_baseline(tiny_run, other)
        assert not deltas["comparable"]
        assert deltas["skipped"] == ["tiny-gzip-net"]

    def test_regression_beyond_tolerance_is_flagged(self, tiny_run):
        slower = json.loads(json.dumps(tiny_run))
        record = slower["workloads"][0]
        record["events_per_second"] = record["events_per_second"] / 3
        deltas = compare_to_baseline(slower, tiny_run)
        failures = regression_failures(deltas, tolerance=0.35)
        assert failures and "tiny-gzip-net" in failures[0]
        assert regression_failures(deltas, tolerance=0.9) == []

    def test_committed_baselines_exist_and_match_pinned_sets(self):
        for quick in (False, True):
            baseline = load_baseline(quick=quick)
            assert baseline is not None, "committed baseline missing"
            names = [w["name"] for w in baseline["workloads"]]
            expected = QUICK_WORKLOADS if quick else STANDARD_WORKLOADS
            assert names == [w.name for w in expected]

    def test_missing_baseline_loads_as_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None

    def test_table_renders_deltas(self, tiny_run):
        deltas = compare_to_baseline(tiny_run, tiny_run)
        table = format_bench_table(tiny_run, deltas)
        assert "tiny-gzip-net" in table
        assert "+0.0%" in table
        assert "total" in table


class TestBenchCli:
    # --no-batched keeps CLI tests off the 1024-lane fleet workload;
    # the fleet record itself is covered by TestBatchedBench below.
    def test_quick_bench_writes_run_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_run.json"
        code = cli_main(["bench", "--quick", "--no-batched",
                         "--out", str(out)])
        assert code == 0
        run = json.loads(out.read_text())
        assert run["quick"] is True
        assert [w["name"] for w in run["workloads"]] == [
            w.name for w in QUICK_WORKLOADS
        ]
        # The committed quick baseline produced real deltas.
        assert run["baseline"] is not None
        assert run["baseline"]["comparable"]
        assert "events_per_second_ratio" in run["baseline"]["totals"]
        assert "workload" in capsys.readouterr().out

    def test_no_baseline_flag(self, tmp_path):
        out = tmp_path / "BENCH_run.json"
        code = cli_main(["bench", "--quick", "--no-baseline",
                         "--no-batched", "--out", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["baseline"] is None

    def test_check_fails_against_impossible_baseline(self, tmp_path):
        fast = load_baseline(quick=True)
        fast = json.loads(json.dumps(fast))
        for record in fast["workloads"]:
            record["events_per_second"] *= 1000.0
        baseline_path = tmp_path / "impossible.json"
        baseline_path.write_text(json.dumps(fast))
        code = cli_main(["bench", "--quick", "--check", "--no-batched",
                         "--baseline", str(baseline_path),
                         "--out", str(tmp_path / "run.json")])
        assert code == 1


class TestBatchedBench:
    """The batched-fleet bench records and their baseline comparison."""

    @pytest.fixture(scope="class")
    def fleet_record(self):
        from repro.bench import run_batched_bench

        # A small fleet: the record shape and the in-harness identity
        # assertion are what's under test, not throughput.
        return run_batched_bench(lanes=8, scale=0.05)

    def test_pinned_fleets(self):
        from repro.bench import BATCHED_FLEETS

        names = [fleet.name for fleet in BATCHED_FLEETS]
        assert len(names) == len(set(names))
        assert "chain-net-fleet" in names
        assert "mixed-fleet" in names
        mixed = next(f for f in BATCHED_FLEETS if f.name == "mixed-fleet")
        # The pinned mixed fleet must keep all three cell shapes: trace
        # (chain), interp-heavy SPEC, and CFG-region (combined-*).
        selectors = {g.selector for g in mixed.groups}
        assert {"net", "combined-net"} <= selectors
        assert sum(g.lanes for g in mixed.groups) == 128
        # The tail-dominated pin must actually stream: >= 256 short
        # divergent lanes, more of them than live slots.
        tail = next(f for f in BATCHED_FLEETS if f.name == "short-tail-fleet")
        tail_lanes = sum(g.lanes for g in tail.groups)
        assert tail_lanes >= 256
        assert tail.max_lanes is not None and tail.max_lanes < tail_lanes
        # Divergent finish times: distinct scales across the groups.
        assert len({g.scale for g in tail.groups}) >= 4

    def test_record_schema(self, fleet_record):
        assert fleet_record["name"] == "chain-net-fleet"
        assert fleet_record["lanes"] == 8
        assert fleet_record["groups"][0]["benchmark"] == "micro:linked_chain"
        assert fleet_record["identical"] is True
        assert fleet_record["steps"] > 0
        assert fleet_record["events_per_second"] > 0
        assert fleet_record["serial_events_per_second"] > 0
        assert fleet_record["speedup"] > 0
        assert fleet_record["backend"] in ("numpy", "python")

    def test_format_renders_one_line(self, fleet_record):
        from repro.bench import format_batched_record

        line = format_batched_record(fleet_record)
        assert "batched fleet" in line
        assert fleet_record["groups"][0]["benchmark"] in line
        assert "\n" not in line

    def test_baseline_without_batched_record_compares_none(self, tiny_run,
                                                           fleet_record):
        run = json.loads(json.dumps(tiny_run))
        run["batched"] = [fleet_record]
        deltas = compare_to_baseline(run, tiny_run)
        assert deltas["batched"] is None
        assert regression_failures(deltas) == []

    def test_matching_batched_records_compare(self, tiny_run, fleet_record):
        run = json.loads(json.dumps(tiny_run))
        run["batched"] = [fleet_record]
        deltas = compare_to_baseline(run, run)
        ratios = deltas["batched"]["chain-net-fleet"]
        assert ratios["events_per_second_ratio"] == 1.0

    def test_fleet_shape_mismatch_compares_none(self, tiny_run,
                                                fleet_record):
        run = json.loads(json.dumps(tiny_run))
        run["batched"] = [fleet_record]
        other = json.loads(json.dumps(run))
        other["batched"][0]["groups"][0]["lanes"] = 1024
        deltas = compare_to_baseline(run, other)
        assert deltas["batched"] is None

    def test_legacy_single_record_baseline_still_compares(self, tiny_run,
                                                          fleet_record):
        # Baselines pinned before the fleet list existed stored one
        # dict without a groups key; the normalizer upgrades both
        # sides, so the comparison still lands by name.
        run = json.loads(json.dumps(tiny_run))
        run["batched"] = [fleet_record]
        legacy = json.loads(json.dumps(tiny_run))
        old = {k: v for k, v in fleet_record.items() if k != "groups"}
        group = fleet_record["groups"][0]
        old.update(benchmark=group["benchmark"], selector=group["selector"],
                   scale=group["scale"])
        legacy["batched"] = old
        deltas = compare_to_baseline(run, legacy)
        ratios = deltas["batched"]["chain-net-fleet"]
        assert ratios["events_per_second_ratio"] == 1.0

    def test_skipped_batched_stays_schema_consistent(self, tiny_run):
        # A --no-batched (or numpy-less) run records an empty list, and
        # a later --check against it must not fail on the missing key —
        # the regression gate simply has no fleet ratios to score.
        run = json.loads(json.dumps(tiny_run))
        run["batched"] = []
        baseline = json.loads(json.dumps(tiny_run))
        baseline["batched"] = []
        deltas = compare_to_baseline(run, baseline)
        assert deltas["batched"] is None
        assert regression_failures(deltas) == []

    def test_batched_regression_is_flagged(self, tiny_run, fleet_record):
        run = json.loads(json.dumps(tiny_run))
        run["batched"] = [fleet_record]
        slower = json.loads(json.dumps(run))
        slower["batched"][0]["events_per_second"] /= 3
        failures = regression_failures(compare_to_baseline(slower, run))
        assert any("batched fleet" in failure for failure in failures)

    def test_cli_records_batched_run(self, tmp_path, monkeypatch):
        # Patch the fleet workloads down to test size; the CLI default
        # (batched on) must thread the records into the run file.
        import repro.bench.batch as batch_mod

        real = batch_mod.run_batched_bench
        monkeypatch.setattr(
            batch_mod, "run_batched_benches",
            lambda quick=False, config=None, backend="auto":
                [real(lanes=4, scale=0.05, quick=quick)],
        )
        out = tmp_path / "run.json"
        code = cli_main(["bench", "--quick", "--no-baseline",
                         "--out", str(out)])
        assert code == 0
        run = json.loads(out.read_text())
        assert isinstance(run["batched"], list)
        assert run["batched"][0]["name"] == "chain-net-fleet"
        assert run["batched"][0]["identical"] is True

    def test_no_batched_records_empty_list(self, tmp_path):
        out = tmp_path / "run.json"
        code = cli_main(["bench", "--quick", "--no-baseline",
                         "--no-batched", "--out", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["batched"] == []
