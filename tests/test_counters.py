"""Tests for the profiling counter table."""

from repro.selection.counters import CounterTable


class TestCounterTable:
    def test_increment_allocates_and_counts(self):
        table = CounterTable()
        assert table.increment("a") == 1
        assert table.increment("a") == 2
        assert table.get("a") == 2

    def test_get_without_allocation_is_zero(self):
        table = CounterTable()
        assert table.get("missing") == 0
        assert not table.is_live("missing")

    def test_release_recycles(self):
        table = CounterTable()
        table.increment("a")
        table.release("a")
        assert not table.is_live("a")
        assert table.get("a") == 0
        # Re-allocation starts from scratch.
        assert table.increment("a") == 1

    def test_release_is_idempotent(self):
        table = CounterTable()
        table.release("never-allocated")  # must not raise

    def test_peak_tracks_high_water_not_current(self):
        table = CounterTable()
        for key in ("a", "b", "c"):
            table.increment(key)
        assert table.peak == 3
        table.release("a")
        table.release("b")
        assert table.live == 1
        assert table.peak == 3

    def test_peak_after_recycling_and_regrowth(self):
        table = CounterTable()
        table.increment("a")
        table.release("a")
        table.increment("b")
        table.increment("c")
        assert table.peak == 2

    def test_allocations_counts_every_allocation(self):
        table = CounterTable()
        table.increment("a")
        table.increment("a")
        table.release("a")
        table.increment("a")
        assert table.allocations == 2
