"""Tests for the Section 5 related-work selectors: Mojo, BOA, W/R."""

import pytest

from repro.config import SystemConfig
from repro.metrics import spanned_cycle_ratio
from repro.selection.registry import RELATED_SELECTOR_NAMES
from repro.system.simulator import simulate


@pytest.fixture
def fast_config():
    return SystemConfig(
        net_threshold=10, lei_threshold=8,
        mojo_exit_threshold=5, boa_threshold=5,
        sampling_period=40, sampling_window=80,
    )


class TestRegistry:
    @pytest.mark.parametrize("name", RELATED_SELECTOR_NAMES)
    def test_related_selectors_run(self, name, diamond_program, fast_config):
        result = simulate(diamond_program, name, fast_config)
        assert result.selector_name == name
        assert result.total_instructions_executed > 0


class TestMojo:
    def test_exit_targets_use_lower_threshold(self, nested_loop_program):
        """With the backward threshold unreachable but the exit threshold
        reachable, Mojo still selects the exit-chained trace at C."""
        # 44 is chosen so the recorder fires mid-inner-loop and the B
        # trace is the single-block cycle (45 = 9 x 5 would land exactly
        # on an iteration boundary and absorb C into the B trace).
        config = SystemConfig(net_threshold=44, mojo_exit_threshold=5)
        result = simulate(nested_loop_program, "mojo", config)
        entries = {r.entry.label for r in result.regions}
        # B trips its backward threshold (9 counts/outer-iter); C is an
        # exit target and needs only 5 counts.
        assert "C" in entries
        net = simulate(nested_loop_program, "net", config)
        # Plain NET needs the full 44 exit counts before selecting C, so
        # Mojo has it cached for more of the run.
        c_mojo = next(r for r in result.regions if r.entry.label == "C")
        c_net = next((r for r in net.regions if r.entry.label == "C"), None)
        assert c_net is None or c_mojo.executed_instructions >= c_net.executed_instructions

    def test_mojo_selects_exit_traces_earlier_than_net(self, nested_loop_program):
        config = SystemConfig(net_threshold=40, mojo_exit_threshold=5)
        mojo = simulate(nested_loop_program, "mojo", config)
        net = simulate(nested_loop_program, "net", config)
        # Earlier selection of the exit-chained traces means more of
        # execution runs from the cache.
        assert mojo.hit_rate >= net.hit_rate

    def test_mojo_still_cannot_span_interprocedural_cycles(
        self, call_loop_program, fast_config
    ):
        result = simulate(call_loop_program, "mojo", fast_config)
        assert result.region_count >= 2
        assert spanned_cycle_ratio(result) == 0.0


class TestBOA:
    def test_boa_selects_biased_direction(self, diamond_program, fast_config):
        result = simulate(diamond_program, "boa", fast_config, seed=5)
        # D's branch is 90% taken to F: any trace through D must pick F.
        for region in result.regions:
            labels = [b.label for b in region.block_list]
            if "D" in labels and labels.index("D") + 1 < len(labels):
                assert labels[labels.index("D") + 1] == "F"

    def test_boa_profiles_more_counters_than_net(self, diamond_program, fast_config):
        boa = simulate(diamond_program, "boa", fast_config, seed=5)
        net = simulate(diamond_program, "net", fast_config, seed=5)
        # Section 5: "All three techniques profile more branches".
        assert boa.peak_counters > net.peak_counters

    def test_boa_threshold_respected(self, simple_loop_program):
        config = SystemConfig(boa_threshold=200)  # loop runs only 100 times
        result = simulate(simple_loop_program, "boa", config)
        assert result.region_count == 0

    def test_boa_cannot_span_interprocedural_cycles(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "boa", fast_config)
        # A backward call ends nothing for BOA (it follows statics), but
        # returns end its traces, so the E..F trace stops at F.
        assert spanned_cycle_ratio(result) <= 0.5
        lei = simulate(call_loop_program, "lei", fast_config)
        assert lei.region_transitions <= result.region_transitions


class TestWigginsRedstone:
    def test_sampling_finds_the_hot_loop(self, simple_loop_program):
        config = SystemConfig(sampling_period=20, sampling_window=40)
        result = simulate(simple_loop_program, "wiggins", config)
        assert any(r.entry.label == "head" for r in result.regions)

    def test_no_samples_no_selection(self, straight_line_program, fast_config):
        result = simulate(straight_line_program, "wiggins", fast_config)
        # Three interpreted steps: the sampler never fires.
        assert result.region_count == 0

    def test_cached_samples_discarded(self, simple_loop_program):
        config = SystemConfig(sampling_period=10, sampling_window=20)
        result = simulate(simple_loop_program, "wiggins", config)
        diag = result.selector_diagnostics
        assert diag["samples_taken"] >= 1
        assert diag["traces_installed"] == result.region_count

    def test_separation_no_better_than_lei(self, call_loop_program, fast_config):
        wiggins = simulate(call_loop_program, "wiggins", fast_config)
        lei = simulate(call_loop_program, "lei", fast_config)
        # Section 5: careful trace selection does not address separation.
        assert lei.region_transitions <= wiggins.region_transitions


class TestSectionFiveClaim:
    """'The problems of separation and duplication apply as much to
    these trace-selection algorithms as to NET.'"""

    @pytest.mark.parametrize("name", RELATED_SELECTOR_NAMES)
    def test_lei_keeps_locality_edge_on_workload(self, name, fast_config):
        from repro.workloads import build_benchmark

        program = build_benchmark("mcf", scale=0.15)
        other = simulate(program, name, fast_config, seed=1)
        lei = simulate(program, "lei", fast_config, seed=1)
        assert lei.region_transitions <= other.region_transitions
