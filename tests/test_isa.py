"""Tests for the instruction-set model."""

import pytest

from repro.errors import ProgramStructureError
from repro.isa.instruction import DEFAULT_INSTRUCTION_BYTES, InstructionBundle
from repro.isa.opcodes import BranchKind


class TestBranchKind:
    def test_always_taken_kinds(self):
        assert BranchKind.JUMP.is_always_taken
        assert BranchKind.CALL.is_always_taken
        assert BranchKind.RETURN.is_always_taken
        assert BranchKind.INDIRECT.is_always_taken

    def test_conditional_is_not_always_taken(self):
        assert not BranchKind.COND.is_always_taken
        assert not BranchKind.FALLTHROUGH.is_always_taken
        assert not BranchKind.HALT.is_always_taken

    def test_fall_through_capability(self):
        assert BranchKind.COND.may_fall_through
        assert BranchKind.FALLTHROUGH.may_fall_through
        assert not BranchKind.JUMP.may_fall_through
        assert not BranchKind.RETURN.may_fall_through

    def test_dynamic_targets_match_compact_trace_encoding_needs(self):
        # Figure 14 records explicit addresses exactly for transfers whose
        # target is not known from the instruction.
        assert BranchKind.INDIRECT.target_is_dynamic
        assert BranchKind.RETURN.target_is_dynamic
        assert not BranchKind.COND.target_is_dynamic
        assert not BranchKind.CALL.target_is_dynamic


class TestInstructionBundle:
    def test_byte_size_uses_per_instruction_average(self):
        bundle = InstructionBundle(10, bytes_per_instruction=4.0)
        assert bundle.byte_size == 40

    def test_default_size_matches_paper_range(self):
        # The paper: average selected instruction size is 3-4 bytes.
        assert 3.0 <= DEFAULT_INSTRUCTION_BYTES <= 4.0

    def test_rejects_empty_block(self):
        with pytest.raises(ProgramStructureError):
            InstructionBundle(0)

    def test_rejects_nonpositive_bytes(self):
        with pytest.raises(ProgramStructureError):
            InstructionBundle(3, bytes_per_instruction=0)

    def test_scaled_rounds_and_clamps(self):
        bundle = InstructionBundle(10)
        assert bundle.scaled(0.25).count == 2
        assert bundle.scaled(0.001).count == 1  # never drops to zero
        assert bundle.scaled(3.0).count == 30

    def test_byte_size_never_zero(self):
        assert InstructionBundle(1, bytes_per_instruction=0.2).byte_size >= 1

    def test_frozen(self):
        bundle = InstructionBundle(5)
        with pytest.raises(AttributeError):
            bundle.count = 9  # type: ignore[misc]
