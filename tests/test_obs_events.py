"""Unit tests for events, sinks, the profiler and the observer facade."""

from __future__ import annotations

import io

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    EVENT_KINDS,
    CollectingSink,
    JsonlSink,
    Observer,
    RingBufferSink,
    SpanTimer,
    TeeSink,
    make_event,
    parse_events,
    summarize_events,
)
from repro.obs.observer import NULL_OBSERVER


class TestEvents:
    def test_make_event_fills_taxonomy_metadata(self):
        event = make_event("region_installed", 12, entry="main:A")
        assert event.category == "region"
        assert event.severity == "info"
        assert event.get("entry") == "main:A"
        assert event.get("missing", "dflt") == "dflt"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError):
            make_event("nonsense_event", 1)

    def test_reserved_field_rejected(self):
        with pytest.raises(ObservabilityError):
            make_event("cache_exit", 1, severity="info")

    def test_jsonl_round_trip_preserves_events(self):
        emitted = [
            make_event("region_installed", 5, entry="a", instructions=7),
            make_event("cache_evicted", 9, entry="b", bytes=120, policy="fifo"),
            make_event("run_failed", 11, error="CacheError", message="boom"),
        ]
        text = "".join(event.to_json() + "\n" for event in emitted)
        parsed = list(parse_events(io.StringIO(text)))
        assert parsed == emitted

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ObservabilityError):
            list(parse_events(io.StringIO("{not json}\n")))
        with pytest.raises(ObservabilityError):
            list(parse_events(io.StringIO("[1, 2]\n")))

    def test_parse_skips_blank_lines_and_keeps_unknown_kinds(self):
        line = '{"step": 3, "kind": "future_kind", "category": "x", "severity": "warn", "n": 1}'
        events = list(parse_events(io.StringIO("\n" + line + "\n\n")))
        assert len(events) == 1
        assert events[0].kind == "future_kind"
        assert events[0].severity == "warn"
        assert events[0].get("n") == 1

    def test_taxonomy_is_well_formed(self):
        for kind, decl in EVENT_KINDS.items():
            assert decl.category
            assert decl.severity in ("debug", "info", "warn", "error"), kind
            assert decl.doc


class TestSinks:
    def test_collecting_sink_and_kind_index(self):
        sink = CollectingSink()
        sink.write(make_event("cache_exit", 1, region_entry="a"))
        sink.write(make_event("region_installed", 2, entry="b"))
        assert len(sink.events) == 2
        assert [e.step for e in sink.by_kind("cache_exit")] == [1]
        assert sink.accepted == 2

    def test_severity_filter(self):
        sink = CollectingSink(min_severity="info")
        sink.write(make_event("cache_exit", 1))        # debug -> dropped
        sink.write(make_event("region_installed", 2))  # info -> kept
        assert [e.kind for e in sink.events] == ["region_installed"]
        assert sink.filtered == 1

    def test_category_filter(self):
        sink = CollectingSink(categories=["cache"])
        sink.write(make_event("region_installed", 1))
        sink.write(make_event("cache_evicted", 2))
        assert [e.kind for e in sink.events] == ["cache_evicted"]

    def test_ring_buffer_overflow_drops_oldest(self):
        sink = RingBufferSink(capacity=3)
        for step in range(1, 6):
            sink.write(make_event("cache_exit", step))
        assert [e.step for e in sink.events] == [3, 4, 5]
        assert sink.dropped == 2
        assert len(sink) == 3

    def test_ring_buffer_capacity_validated(self):
        with pytest.raises(ObservabilityError):
            RingBufferSink(capacity=0)

    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        sink.write(make_event("region_installed", 3, entry="x"))
        sink.write(make_event("cache_flushed", 4, regions=2, bytes=100))
        sink.close()
        with open(path, encoding="utf-8") as handle:
            events = list(parse_events(handle))
        assert [e.kind for e in events] == ["region_installed", "cache_flushed"]
        assert events[1].get("bytes") == 100

    def test_jsonl_sink_flushes_mid_run(self, tmp_path):
        # Killed-worker scenario: the sink is never closed.  Everything
        # up to the last flush boundary must already be on disk — the
        # whole point of an event log is surviving the crash it
        # records the run-up to.
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path, flush_every=4)
        for step in range(1, 6):
            sink.write(make_event("cache_exit", step))
        with open(path, encoding="utf-8") as handle:
            events = list(parse_events(handle))
        assert len(events) >= 4
        sink.close()

    def test_jsonl_sink_flush_every_validated(self):
        with pytest.raises(ObservabilityError):
            JsonlSink(io.StringIO(), flush_every=0)

    def test_tee_fans_out(self):
        a, b = CollectingSink(), CollectingSink(min_severity="info")
        tee = TeeSink([a, b])
        tee.write(make_event("cache_exit", 1))
        assert len(a.events) == 1 and len(b.events) == 0

    def test_tee_close_reaches_every_child_despite_failure(self):
        closed = []

        class Failing(CollectingSink):
            def close(self):
                closed.append("failing")
                raise RuntimeError("disk full")

        class Recording(CollectingSink):
            def close(self):
                closed.append("recording")

        tee = TeeSink([Failing(), Recording(), Failing()])
        with pytest.raises(RuntimeError, match="disk full"):
            tee.close()
        # Every child was closed; the first error was re-raised after.
        assert closed == ["failing", "recording", "failing"]


class TestSpanTimer:
    def make_timer(self):
        ticks = iter(range(1000))
        return SpanTimer(clock=lambda: float(next(ticks)))

    def test_nested_scopes_use_self_time(self):
        timer = self.make_timer()
        timer.enter("outer")   # t=0
        timer.enter("inner")   # t=1: outer banks 1
        timer.exit()           # t=2: inner banks 1
        timer.exit()           # t=3: outer banks 1 more
        assert timer.totals["outer"] == 2.0
        assert timer.totals["inner"] == 1.0
        assert timer.counts == {"outer": 1, "inner": 1}
        assert timer.depth == 0

    def test_switch_closes_and_opens_at_same_depth(self):
        timer = self.make_timer()
        timer.switch("interpret")   # t=0
        timer.switch("cache_walk")  # t=1: interpret banks 1
        timer.switch("interpret")   # t=2: cache_walk banks 1
        timer.stop()                # t=3: interpret banks 1
        assert timer.totals["interpret"] == 2.0
        assert timer.totals["cache_walk"] == 1.0
        assert timer.total_seconds == 3.0

    def test_exit_without_enter_is_an_error(self):
        timer = self.make_timer()
        with pytest.raises(ObservabilityError):
            timer.exit()

    def test_throughput_and_table(self):
        timer = self.make_timer()
        timer.enter("interpret")
        timer.exit()
        timer.steps = 500
        assert timer.throughput() == 500.0
        table = timer.format_table()
        assert "interpret" in table
        assert "steps: 500" in table
        snap = timer.snapshot()
        assert snap["phases"]["interpret"]["entries"] == 1

    def test_span_context_manager(self):
        timer = self.make_timer()
        with timer.span("region_build"):
            pass
        assert timer.totals["region_build"] == 1.0


class TestObserver:
    def test_null_observer_is_fully_disabled(self):
        assert not NULL_OBSERVER.enabled
        assert not NULL_OBSERVER.events_enabled
        assert not NULL_OBSERVER.metrics_enabled
        assert not NULL_OBSERVER.profiling_enabled
        assert not bool(NULL_OBSERVER)
        # Self-guarding helpers are no-ops, not errors.
        assert NULL_OBSERVER.event("cache_exit", 1) is None
        NULL_OBSERVER.count("whatever_total")

    def test_disabled_span_is_shared_noop(self):
        span_a = NULL_OBSERVER.span("x")
        span_b = NULL_OBSERVER.span("y")
        assert span_a is span_b
        with span_a:
            pass

    def test_common_fields_merge_into_events(self):
        sink = CollectingSink()
        obs = Observer(sink=sink)
        obs.common["selector"] = "net"
        obs.emit("region_installed", 7, entry="a")
        event = sink.events[0]
        assert event.get("selector") == "net"
        assert event.get("entry") == "a"
        # Explicit fields win over common fields.
        obs.common["entry"] = "shadowed"
        obs.emit("region_installed", 8, entry="explicit")
        assert sink.events[1].get("entry") == "explicit"

    def test_count_creates_labelled_counter(self):
        from repro.obs import MetricsRegistry

        obs = Observer(metrics=MetricsRegistry())
        obs.count("regions_rejected_total", reason="x")
        obs.count("regions_rejected_total", 2, reason="y")
        counter = obs.metrics.get("regions_rejected_total")
        assert counter.value(reason="x") == 1
        assert counter.value(reason="y") == 2


class TestInspectSummary:
    def test_summarize_counts_and_failure(self):
        events = [
            make_event("run_started", 0, benchmark="b", selector="net"),
            make_event("region_installed", 10, selector="net", entry="a"),
            make_event("region_rejected", 12, selector="net", entry="a",
                       reason="entry_already_cached"),
            make_event("region_rejected", 14, selector="net", entry="a",
                       reason="entry_already_cached"),
            make_event("cache_exit", 15, region_entry="a", exit_target="b"),
            make_event("cache_evicted", 20, entry="a", bytes=64, policy="fifo"),
            make_event("cache_flushed", 30, regions=3, bytes=200),
            make_event("run_failed", 31, error="CacheError", message="boom"),
        ]
        summary = summarize_events(events)
        assert summary.total_events == 8
        assert summary.first_step == 0 and summary.last_step == 31
        assert summary.installed == 1
        assert summary.cache_exits == 1
        assert summary.evictions == 1 and summary.flushes == 1
        assert summary.evicted_bytes == 64
        assert summary.top_rejected() == [("a", 2)]
        assert summary.rejection_reasons == {"entry_already_cached": 2}
        assert summary.decisions_by_selector["net"]["region_rejected"] == 2
        assert summary.failure is not None
        from repro.obs import format_summary

        text = format_summary(summary)
        assert "RUN FAILED at step 31" in text
        assert "eviction churn: 1 evictions, 1 flushes" in text
        assert "region_rejected" in text

    def test_job_lifecycle_section(self):
        from repro.obs import format_summary

        events = [
            make_event("job_submitted", 0, job_id="a")._replace(ts=100.0),
            make_event("job_submitted", 0, job_id="b")._replace(ts=100.5),
            make_event("job_retried", 0, job_id="b", attempt=1,
                       reason="crashed", delay=0.1),
            make_event("job_completed", 0, job_id="a", attempt=1,
                       elapsed=1.9)._replace(ts=102.0),
            # No usable timestamp: falls back to the elapsed payload.
            make_event("job_completed", 0, job_id="b", attempt=2,
                       elapsed=3.25)._replace(ts=0.0),
            make_event("job_failed", 0, job_id="c", attempts=3,
                       reason="timeout"),
            make_event("job_restored", 0, job_id="d"),
        ]
        summary = summarize_events(events)
        assert summary.jobs_submitted == 2
        assert summary.jobs_completed == 2
        assert summary.jobs_retried == 1
        assert summary.jobs_failed == 1
        assert summary.jobs_restored == 1
        assert summary.job_wall_seconds["a"] == pytest.approx(2.0)
        assert summary.job_wall_seconds["b"] == pytest.approx(3.25)
        assert summary.job_retry_reasons == {"b": ["crashed"]}
        text = format_summary(summary)
        assert ("job engine: 2 submitted, 2 completed, 1 retried, "
                "1 failed, 1 restored from checkpoint") in text
        assert "retried: crashed" in text

    def test_phase_shift_timeline_section(self):
        from repro.obs import format_summary

        events = [
            make_event("phase_shift", 5000, signal="hit_rate",
                       previous=0.9, current=0.5, delta=-0.4, window=5000),
            make_event("phase_shift", 10000, signal="churn",
                       previous=2, current=14, delta=12, window=5000),
        ]
        summary = summarize_events(events)
        assert summary.phase_shifts == [
            (5000, "hit_rate", -0.4), (10000, "churn", 12)]
        text = format_summary(summary)
        assert "phase shifts: 2" in text
        assert "step 5000" in text and "hit_rate" in text


class TestEventOrdering:
    def test_events_are_stamped_monotonically(self):
        events = [make_event("cache_exit", step) for step in range(50)]
        sequences = [event.seq for event in events]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        timestamps = [event.ts for event in events]
        assert timestamps == sorted(timestamps)
        assert all(ts > 0 for ts in timestamps)

    def test_order_key_totally_orders_a_merged_log(self):
        events = [make_event("cache_exit", step) for step in range(10)]
        shuffled = events[::2] + events[1::2]
        merged = sorted(shuffled, key=lambda event: event.order_key)
        assert merged == events

    def test_stamps_survive_serialization(self):
        import json

        from repro.obs.events import event_from_dict

        event = make_event("region_installed", 4, entry="a")
        clone = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone.ts == event.ts and clone.seq == event.seq
        assert clone.order_key == event.order_key
