"""Tests for branch decision models."""

import pytest

from repro.behavior.models import (
    AlwaysTaken,
    Bernoulli,
    DecisionContext,
    LoopTrip,
    MarkovBiased,
    NeverTaken,
    Periodic,
    PhaseIndirect,
    PhaseShift,
    RoundRobinIndirect,
    TableIndirect,
)
from repro.behavior.rng import SplitMix64
from repro.errors import ProgramStructureError


def make_ctx(seed=0, step=0):
    return DecisionContext(rng=SplitMix64(seed), site_state={}, step=step)


class TestFixedModels:
    def test_always_taken(self):
        ctx = make_ctx()
        assert all(AlwaysTaken().next_taken(ctx) for _ in range(10))

    def test_never_taken(self):
        ctx = make_ctx()
        assert not any(NeverTaken().next_taken(ctx) for _ in range(10))


class TestBernoulli:
    def test_rate(self):
        ctx = make_ctx(seed=5)
        model = Bernoulli(0.8)
        hits = sum(model.next_taken(ctx) for _ in range(10000))
        assert 0.77 < hits / 10000 < 0.83

    def test_unbiased_is_half(self):
        ctx = make_ctx(seed=6)
        model = Bernoulli(0.5)
        hits = sum(model.next_taken(ctx) for _ in range(10000))
        assert 0.47 < hits / 10000 < 0.53

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ProgramStructureError):
            Bernoulli(bad)


class TestLoopTrip:
    def test_taken_trips_minus_one_times_per_activation(self):
        ctx = make_ctx()
        model = LoopTrip(5)
        outcomes = [model.next_taken(ctx) for _ in range(10)]
        # Two activations of a 5-trip loop: T T T T F, T T T T F.
        assert outcomes == [True] * 4 + [False] + [True] * 4 + [False]

    def test_single_trip_never_taken(self):
        ctx = make_ctx()
        model = LoopTrip(1)
        assert [model.next_taken(ctx) for _ in range(3)] == [False] * 3

    def test_jitter_varies_activation_lengths(self):
        ctx = make_ctx(seed=3)
        model = LoopTrip(10, jitter=5)
        lengths = []
        run = 0
        for _ in range(2000):
            if model.next_taken(ctx):
                run += 1
            else:
                lengths.append(run + 1)
                run = 0
        assert min(lengths) < 10 < max(lengths)
        assert all(5 <= n <= 15 for n in lengths)

    def test_state_is_per_site_not_per_model(self):
        model = LoopTrip(3)
        ctx_a = make_ctx()
        ctx_b = make_ctx()
        assert model.next_taken(ctx_a)
        assert model.next_taken(ctx_b)  # fresh site: starts its own count
        assert model.next_taken(ctx_a)
        assert not model.next_taken(ctx_a)  # site A exits after 3 trips

    def test_rejects_bad_parameters(self):
        with pytest.raises(ProgramStructureError):
            LoopTrip(0)
        with pytest.raises(ProgramStructureError):
            LoopTrip(5, jitter=5)


class TestPeriodic:
    def test_pattern_repeats(self):
        ctx = make_ctx()
        model = Periodic([True, True, False])
        assert [model.next_taken(ctx) for _ in range(6)] == [
            True, True, False, True, True, False,
        ]

    def test_rejects_empty_pattern(self):
        with pytest.raises(ProgramStructureError):
            Periodic([])


class TestPhaseShift:
    def test_probability_tracks_phase(self):
        model = PhaseShift([(100, 1.0), (100, 0.0)])
        assert model.probability_at(0) == 1.0
        assert model.probability_at(99) == 1.0
        assert model.probability_at(100) == 0.0
        assert model.probability_at(199) == 0.0
        assert model.probability_at(200) == 1.0  # cycles

    def test_decisions_follow_step(self):
        model = PhaseShift([(10, 1.0), (10, 0.0)])
        ctx = make_ctx()
        ctx.step = 5
        assert model.next_taken(ctx)
        ctx.step = 15
        assert not model.next_taken(ctx)

    def test_rejects_bad_phases(self):
        with pytest.raises(ProgramStructureError):
            PhaseShift([])
        with pytest.raises(ProgramStructureError):
            PhaseShift([(0, 0.5)])
        with pytest.raises(ProgramStructureError):
            PhaseShift([(10, 1.5)])


class TestMarkovBiased:
    def test_fully_sticky_never_switches(self):
        ctx = make_ctx()
        model = MarkovBiased(1.0, 1.0, initial_taken=True)
        assert all(model.next_taken(ctx) for _ in range(50))

    def test_fully_antisticky_alternates(self):
        ctx = make_ctx()
        model = MarkovBiased(0.0, 0.0, initial_taken=True)
        outcomes = [model.next_taken(ctx) for _ in range(6)]
        assert outcomes == [True, False, True, False, True, False]

    def test_rejects_bad_probability(self):
        with pytest.raises(ProgramStructureError):
            MarkovBiased(1.2, 0.5)


class TestIndirectModels:
    def test_table_indirect_distribution(self):
        ctx = make_ctx(seed=8)
        model = TableIndirect([3.0, 1.0])
        counts = [0, 0]
        for _ in range(8000):
            counts[model.next_target_index(ctx, 2)] += 1
        assert 0.70 < counts[0] / 8000 < 0.80

    def test_table_indirect_target_count_mismatch(self):
        model = TableIndirect([1.0, 1.0])
        with pytest.raises(ProgramStructureError):
            model.next_target_index(make_ctx(), 3)

    def test_table_indirect_rejects_bad_weights(self):
        with pytest.raises(ProgramStructureError):
            TableIndirect([])
        with pytest.raises(ProgramStructureError):
            TableIndirect([0.0, 0.0])
        with pytest.raises(ProgramStructureError):
            TableIndirect([-1.0, 2.0])

    def test_round_robin_cycles(self):
        ctx = make_ctx()
        model = RoundRobinIndirect()
        picks = [model.next_target_index(ctx, 3) for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_phase_indirect_switches_tables(self):
        model = PhaseIndirect([(10, [1.0, 0.0]), (10, [0.0, 1.0])])
        ctx = make_ctx()
        ctx.step = 0
        assert model.next_target_index(ctx, 2) == 0
        ctx.step = 10
        assert model.next_target_index(ctx, 2) == 1

    def test_phase_indirect_rejects_empty(self):
        with pytest.raises(ProgramStructureError):
            PhaseIndirect([])
