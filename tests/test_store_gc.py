"""Size-bounded GC and corrupt-entry quarantine (repro.store).

The store backs the grid service, so the properties here are the ones
the service relies on: a GC pass never leaves the store over budget,
every survivor stays readable, an evicted cell recomputes to the
bit-identical report, and a corrupt entry is quarantined out of the
lookup namespace instead of being re-parsed forever.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.errors import StoreError
from repro.metrics.summary import MetricReport
from repro.obs import CollectingSink, MetricsRegistry, Observer
from repro.store import ResultStore, cell_key
from repro.store.resultstore import QUARANTINE_SUFFIX
from repro.system.simulator import simulate
from repro.workloads import build_benchmark


@pytest.fixture(scope="module")
def report():
    program = build_benchmark("gzip", scale=0.05)
    return MetricReport.from_result(simulate(program, "net", seed=1))


def make_key(seed=1, **overrides):
    params = dict(benchmark="gzip", selector="net", scale=0.05, seed=seed,
                  config=SystemConfig(), code_version="v1")
    params.update(overrides)
    return cell_key(**params)


def fill(store, report, count, start=0):
    """Put ``count`` entries under distinct seeds; returns their keys."""
    keys = [make_key(seed=seed) for seed in range(start, start + count)]
    for key in keys:
        store.put(key, report)
    return keys


def spread_mtimes(store, keys):
    """Give every entry a distinct, deterministic access stamp.

    Seed order == access order (seed 0 is the coldest), so LRU eviction
    order is predictable without sleeping between puts.
    """
    base = 1_000_000_000
    for index, key in enumerate(keys):
        path = store.path_for(key)
        os.utime(path, (base + index, base + index))


COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture],
)


class TestGCProperties:
    @COMMON
    @given(
        entries=st.integers(1, 16),
        keep=st.integers(0, 16),
        slack=st.integers(0, 512),
    )
    def test_budget_respected_and_survivors_readable(
        self, tmp_path_factory, report, entries, keep, slack
    ):
        root = tmp_path_factory.mktemp("gc-prop")
        store = ResultStore(str(root))
        keys = fill(store, report, entries)
        spread_mtimes(store, keys)
        sizes = [os.stat(store.path_for(key)).st_size for key in keys]
        budget = max(1, min(keep, entries) * max(sizes) + slack)
        stats = store.gc(max_bytes=budget)
        total = store.total_bytes()
        # Invariant 1: never over budget after a pass, unconditionally
        # (an entry larger than the whole budget is evicted too).
        assert total <= budget
        assert stats.live_bytes == total
        assert stats.evicted + stats.live == entries
        # Invariant 2: every survivor reads back bit-identical, and the
        # survivors are exactly the most recently accessed entries.
        survivors = [key for key in keys if store.get(key) is not None]
        assert len(survivors) == stats.live
        expected = keys[entries - stats.live:]
        assert [key.digest for key in survivors] \
            == [key.digest for key in expected]
        assert store.stats.corrupt == 0

    @COMMON
    @given(entries=st.integers(2, 12), accessed=st.integers(0, 11))
    def test_eviction_is_lru_by_access(
        self, tmp_path_factory, report, entries, accessed
    ):
        root = tmp_path_factory.mktemp("gc-lru")
        store = ResultStore(str(root))
        keys = fill(store, report, entries)
        spread_mtimes(store, keys)
        # Re-access the coldest entry: a hit must bump it to the top of
        # the LRU order, so it survives a pass that evicts half.
        victim = keys[min(accessed, entries - 1)]
        assert store.get(victim) is not None
        entry_bytes = os.stat(store.path_for(victim)).st_size
        store.gc(max_bytes=max(1, (entries // 2) * entry_bytes))
        if entries // 2 >= 1:
            assert store.get(victim) is not None

    def test_evicted_cell_recomputes_bit_identical(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        key = make_key()
        store.put(key, report)
        store.gc(max_bytes=1)
        assert len(store) == 0
        assert store.get(key) is None
        # Deterministic cells make eviction safe: recompute and compare.
        program = build_benchmark("gzip", scale=0.05)
        recomputed = MetricReport.from_result(
            simulate(program, "net", seed=1)
        )
        assert recomputed == report
        store.put(key, recomputed)
        assert store.get(key) == report


class TestGCMechanics:
    def test_thousand_cell_corpus_held_under_budget(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        keys = fill(store, report, 1000)
        entry_bytes = os.stat(store.path_for(keys[0])).st_size
        budget = 100 * entry_bytes
        stats = store.gc(max_bytes=budget)
        assert store.total_bytes() <= budget
        # Entry sizes vary by a few bytes across seeds, so the exact
        # survivor count floats right around the budgeted 100.
        assert 90 <= stats.live <= 100
        assert stats.evicted + stats.live == 1000
        assert len(store) == stats.live
        # Every survivor across the shard fan-out reads back intact.
        alive = [key for key in keys if store.get(key) is not None]
        assert len(alive) == stats.live

    def test_auto_gc_on_put_keeps_store_bounded(self, tmp_path, report):
        store = ResultStore(str(tmp_path), max_bytes=8192, gc_interval=4)
        fill(store, report, 32)
        # Interval-amortized: at most gc_interval-1 puts of slop above
        # the budget between passes.
        entry_bytes = os.stat(
            store.path_for(make_key(seed=31))
        ).st_size
        assert store.total_bytes() <= 8192 + 3 * entry_bytes
        assert store.stats.gc_passes >= 1
        assert store.stats.gc_evicted > 0

    def test_gc_emits_event_and_counter(self, tmp_path, report):
        sink = CollectingSink()
        registry = MetricsRegistry()
        store = ResultStore(
            str(tmp_path), observer=Observer(sink=sink, metrics=registry)
        )
        fill(store, report, 4)
        stats = store.gc(max_bytes=1)
        assert stats.evicted == 4
        events = sink.by_kind("store_gc")
        assert len(events) == 1
        assert events[0].get("evicted") == 4
        counter = registry.counter("store_gc_evicted_total")
        assert counter.value() == 4

    def test_empty_shards_pruned_after_eviction(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        fill(store, report, 8)
        assert any(os.scandir(tmp_path))
        store.gc(max_bytes=1)
        assert list(os.scandir(tmp_path)) == []

    def test_gc_without_budget_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(StoreError, match="byte budget"):
            store.gc()
        with pytest.raises(StoreError, match="budget"):
            store.gc(max_bytes=0)

    def test_bad_construction_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="shard_width"):
            ResultStore(str(tmp_path), shard_width=0)
        with pytest.raises(StoreError, match="max_bytes"):
            ResultStore(str(tmp_path), max_bytes=0)
        with pytest.raises(StoreError, match="gc_interval"):
            ResultStore(str(tmp_path), gc_interval=0)

    def test_wider_shards_fan_out_and_round_trip(self, tmp_path, report):
        store = ResultStore(str(tmp_path), shard_width=3)
        key = make_key()
        path = store.put(key, report)
        assert os.path.basename(os.path.dirname(path)) == key.digest[:3]
        assert store.get(key) == report


class TestQuarantine:
    def test_corrupt_entry_quarantined_with_counter(self, tmp_path, report):
        sink = CollectingSink()
        registry = MetricsRegistry()
        store = ResultStore(
            str(tmp_path), observer=Observer(sink=sink, metrics=registry)
        )
        key = make_key()
        path = store.put(key, report)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert store.get(key) is None
        # The bytes move out of the lookup namespace (kept for
        # forensics) so the entry is never re-parsed...
        assert not os.path.exists(path)
        assert os.path.exists(path + QUARANTINE_SUFFIX)
        assert registry.counter("store_corrupt_total").value() == 1
        assert len(sink.by_kind("store_corrupt")) == 1
        # ...and the next lookup is a plain miss, not another corruption.
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        # Recompute-and-overwrite heals the entry.
        store.put(key, report)
        assert store.get(key) == report

    def test_quarantined_entry_is_invisible_to_gc_and_len(
        self, tmp_path, report
    ):
        store = ResultStore(str(tmp_path))
        key = make_key()
        path = store.put(key, report)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json")
        store.get(key)
        assert len(store) == 0
        assert store.total_bytes() == 0

    def test_get_digest_round_trip_and_quarantine(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        key = make_key()
        path = store.put(key, report)
        payload = store.get_digest(key.digest)
        assert payload["digest"] == key.digest
        assert payload["key"] == key.to_dict()
        assert store.get_digest(key.digest.upper()) is not None
        assert store.get_digest("f" * 64) is None
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert store.get_digest(key.digest) is None
        assert os.path.exists(path + QUARANTINE_SUFFIX)

    def test_get_digest_rejects_non_digests(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(StoreError, match="sha256"):
            store.get_digest("abc")
        with pytest.raises(StoreError, match="sha256"):
            store.get_digest("z" * 64)
