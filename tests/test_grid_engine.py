"""Integration tests: run_grid over the job engine and result store.

These encode the PR's acceptance criteria: crashed workers retry to a
bit-identical grid, a warm store recomputes zero cells, and an
interrupted grid resumes with only its missing cells.
"""

import pytest

from repro.errors import JobError
from repro.jobs import FaultInjector
from repro.obs import CollectingSink, Observer
from repro.experiments.manifest import load_manifest
from repro.experiments.runner import ExperimentGrid, run_grid
from repro.store import ResultStore

BENCHMARKS = ("gzip", "mcf")
SELECTORS = ("net", "lei")
SCALE = 0.05


def small_grid(**kwargs):
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("benchmarks", BENCHMARKS)
    kwargs.setdefault("selectors", SELECTORS)
    return run_grid(**kwargs)


@pytest.fixture(scope="module")
def serial_grid():
    return small_grid()


class TestParallelFaultTolerance:
    def test_parallel_is_bit_identical_to_serial(self, serial_grid):
        parallel = small_grid(workers=3)
        assert parallel.reports == serial_grid.reports
        assert list(parallel.reports) == list(serial_grid.reports)

    def test_crashing_workers_retry_to_identical_reports(self, serial_grid):
        sink = CollectingSink()
        crashed = small_grid(
            workers=3, backoff=0.01, observer=Observer(sink=sink),
            faults=FaultInjector(crashes={"gzip:net": 2, "mcf:lei": 1}),
        )
        assert crashed.reports == serial_grid.reports
        retried = {e.get("job_id") for e in sink.by_kind("job_retried")}
        assert retried == {"gzip:net", "mcf:lei"}

    def test_exhausted_cell_aborts_with_cell_context(self):
        with pytest.raises(JobError) as exc_info:
            small_grid(workers=2, backoff=0.01, max_retries=1,
                       faults=FaultInjector(crashes={"mcf:net": 99}))
        assert exc_info.value.context["job_id"] == "mcf:net"
        assert exc_info.value.context["attempts"] == 2


class TestStoreIntegration:
    def test_warm_store_recomputes_zero_cells(self, tmp_path, serial_grid):
        store = ResultStore(str(tmp_path), )
        cold = small_grid(store=store, code_version="test")
        assert store.stats.puts == 4
        assert cold.reports == serial_grid.reports

        warm_store = ResultStore(str(tmp_path))
        warm = small_grid(store=warm_store, code_version="test")
        assert warm_store.stats.hits == 4
        assert warm_store.stats.puts == 0  # zero cells recomputed
        assert warm.reports == serial_grid.reports  # bit-identical
        assert list(warm.reports) == list(serial_grid.reports)

    def test_store_accepts_a_plain_directory_path(self, tmp_path):
        grid = small_grid(store=str(tmp_path), code_version="test")
        assert isinstance(grid, ExperimentGrid)
        rerun = small_grid(store=str(tmp_path), code_version="test")
        assert rerun.reports == grid.reports

    def test_code_version_invalidates_the_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        small_grid(store=store, code_version="v1")
        assert store.stats.puts == 4
        small_grid(store=store, code_version="v2")
        assert store.stats.puts == 8  # all four recomputed under v2

    def test_interrupted_grid_resumes_missing_cells_only(self, tmp_path,
                                                         serial_grid):
        store = ResultStore(str(tmp_path))
        # Serial order is gzip:net, gzip:lei, mcf:net, mcf:lei; killing
        # mcf:net aborts the run with the first two cells completed.
        with pytest.raises(JobError):
            small_grid(store=store, code_version="test",
                       backoff=0.0, max_retries=0,
                       faults=FaultInjector(crashes={"mcf:net": 99}))
        assert store.stats.puts == 2

        resumed_store = ResultStore(str(tmp_path))
        resumed = small_grid(store=resumed_store, code_version="test")
        assert resumed_store.stats.hits == 2   # finished cells reused
        assert resumed_store.stats.puts == 2   # only missing recomputed
        assert resumed.reports == serial_grid.reports

    def test_parallel_crashes_with_store_stay_identical(self, tmp_path,
                                                        serial_grid):
        grid = small_grid(
            store=str(tmp_path), code_version="test", workers=3,
            backoff=0.01, faults=FaultInjector(crashes={"gzip:lei": 1}),
        )
        assert grid.reports == serial_grid.reports
        warm = small_grid(store=str(tmp_path), code_version="test")
        assert warm.reports == serial_grid.reports

    def test_manifest_records_store_traffic(self, tmp_path):
        manifest_dir = tmp_path / "manifest"
        small_grid(store=str(tmp_path / "store"), code_version="test",
                   manifest_dir=str(manifest_dir))
        manifest = load_manifest(str(manifest_dir))
        assert manifest["cells"] == 4
        assert manifest["store"]["puts"] == 4


class TestGridDedup:
    def test_benchmarks_and_selectors_preserve_first_seen_order(self):
        grid = ExperimentGrid(scale=1.0, seed=1, config=None)
        for bench in ("b", "a", "b", "c"):
            for selector in ("net", "lei"):
                grid.reports[(bench, selector)] = None
        assert grid.benchmarks == ("b", "a", "c")
        assert grid.selectors == ("net", "lei")
