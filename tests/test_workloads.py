"""Tests for the motif library and the synthetic SPECint2000 suite."""

import pytest

from repro.behavior.rng import SplitMix64
from repro.config import SystemConfig
from repro.errors import ProgramStructureError
from repro.execution.engine import ExecutionEngine
from repro.program.builder import ProgramBuilder
from repro.program.validate import unreachable_blocks
from repro.system.simulator import simulate
from repro.workloads import BENCHMARKS, benchmark_names, build_benchmark
from repro.workloads import motifs
from repro.workloads.motifs import MotifContext
from repro.workloads.synth import assemble, scaled


def make_ctx():
    pb = ProgramBuilder("motif_host", entry="main")
    return pb, MotifContext(pb, SplitMix64(7))


def run_counts(program, seed=0, max_steps=200_000):
    engine = ExecutionEngine(program, seed=seed, max_steps=max_steps)
    counts = {}
    for step in engine.run():
        counts[step.block.label] = counts.get(step.block.label, 0) + 1
    return counts


class TestMotifs:
    def test_hot_loop_iterates_trips_times(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        head = motifs.hot_loop(main, ctx, trips=12, body_blocks=1)
        main.block("end", insts=1).halt()
        counts = run_counts(pb.build())
        assert counts[head] == 12

    def test_dual_entry_gives_head_two_predecessors(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        head_label = motifs.hot_loop(main, ctx, trips=5, dual_entry=True)
        main.block("end", insts=1).halt()
        program = pb.build()
        head = program.block_by_full_label(f"main:{head_label}")
        preds = [
            b for b in program.blocks
            if head in program.static_successors(b)
        ]
        # entry_cond (taken), entry_alt (fall-through), and the latch.
        assert len(preds) == 3

    def test_nested_loop_multiplies_iterations(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        motifs.nested_loop(main, ctx, [4, 6], body_blocks=1)
        main.block("end", insts=1).halt()
        counts = run_counts(pb.build())
        run_blocks = [c for label, c in counts.items() if label.startswith("run")]
        assert run_blocks and run_blocks[0] == 24

    def test_diamond_paths_split_by_bias(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        motifs.loop(main, ctx, trips=2000,
                    body=lambda: motifs.diamond(main, ctx, bias=0.25))
        main.block("end", insts=1).halt()
        counts = run_counts(pb.build(), seed=3)
        then_count = next(c for l, c in counts.items() if l.startswith("dia_then"))
        else_count = next(c for l, c in counts.items() if l.startswith("dia_else"))
        assert then_count < else_count
        assert 0.18 < then_count / 2000 < 0.32

    def test_one_shot_loop_takes_backward_branch_once(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        head = motifs.one_shot_loop(main, ctx)
        main.block("end", insts=1).halt()
        counts = run_counts(pb.build())
        assert counts[head] == 2

    def test_rare_retry_mostly_falls_through(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        target = motifs.rare_retry(main, ctx, retry_probability=0.1)
        main.block("end", insts=1).halt()
        counts = run_counts(pb.build(), seed=9)
        # One pass through; retried only rarely.
        assert counts[target] <= 3

    def test_switch_loop_visits_cases_by_weight(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        motifs.switch_loop(main, ctx, trips=3000, case_insts=[3, 3],
                           weights=[9.0, 1.0])
        main.block("end", insts=1).halt()
        counts = run_counts(pb.build(), seed=5, max_steps=300_000)
        cases = sorted(
            (label, c) for label, c in counts.items() if label.startswith("sw_case")
        )
        # The hot case is dispatched 9x as often; the cold case also
        # receives ~15% of the hot case's fall-throughs, so expect a
        # factor of roughly 9 / (1 + 0.15 * 9) ≈ 3.8 — assert > 2.
        assert cases[0][1] > cases[1][1] * 2

    def test_recursive_procedure_bounded_depth(self):
        pb, ctx = make_ctx()
        motifs.recursive_procedure(ctx, "walker", depth=6)
        main = pb.procedure("main")
        main.block("go", insts=1).call("walker")
        main.block("end", insts=1).halt()
        pb.set_entry("main")
        counts = run_counts(pb.build())
        entry_label = next(l for l in counts if l.startswith("rec_entry"))
        assert counts[entry_label] == 6

    def test_call_loop_backward_when_callee_first(self):
        pb, ctx = make_ctx()
        motifs.leaf_procedure(ctx, "low", blocks=1)
        main = pb.procedure("main")
        pb.set_entry("main")
        motifs.call_loop(main, ctx, "low", trips=4)
        main.block("end", insts=1).halt()
        program = pb.build()
        call_block = next(
            b for b in program.blocks if b.label.startswith("call")
        )
        assert call_block.is_backward_transfer_to(call_block.terminator.taken_target)

    def test_phase_split_alternates_bodies(self):
        pb, ctx = make_ctx()
        main = pb.procedure("main")
        motifs.loop(
            main, ctx, trips=4000,
            body=lambda: motifs.phase_split(
                main, ctx, period=2000,
                body_a=lambda: motifs.straight_run(main, ctx, 1, 2),
                body_b=lambda: motifs.straight_run(main, ctx, 1, 3),
            ),
        )
        main.block("end", insts=1).halt()
        counts = run_counts(pb.build(), max_steps=500_000)
        runs = [c for label, c in counts.items() if label.startswith("run")]
        assert len(runs) == 2
        assert all(c > 500 for c in runs)  # both bodies execute

    def test_scaled_floor(self):
        assert scaled(1000, 0.001) == 10
        assert scaled(1000, 2.0) == 2000


class TestSuite:
    def test_twelve_benchmarks(self):
        names = benchmark_names()
        assert len(names) == 12
        assert set(names) == {
            "gzip", "vpr", "gcc", "mcf", "crafty", "parser",
            "eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
        }

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmark_builds_and_has_no_orphans(self, name):
        program = build_benchmark(name)
        assert program.is_finalized
        assert unreachable_blocks(program) == set()

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmark_runs_to_completion(self, name):
        program = build_benchmark(name, scale=0.02)
        engine = ExecutionEngine(program, seed=1)
        steps = sum(1 for _ in engine.run())
        assert 0 < steps < engine.max_steps  # halted, not truncated

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ProgramStructureError, match="unknown benchmark"):
            build_benchmark("spice")

    def test_scale_controls_run_length(self):
        small = build_benchmark("gzip", scale=0.02)
        large = build_benchmark("gzip", scale=0.05)
        small_steps = sum(1 for _ in ExecutionEngine(small).run())
        large_steps = sum(1 for _ in ExecutionEngine(large).run())
        assert large_steps > small_steps * 1.5

    def test_structure_is_scale_invariant(self):
        a = build_benchmark("mcf", scale=0.1)
        b = build_benchmark("mcf", scale=1.0)
        assert a.block_count == b.block_count
        assert [blk.label for blk in a.blocks] == [blk.label for blk in b.blocks]

    def test_deterministic_given_seed(self):
        a = build_benchmark("parser")
        b = build_benchmark("parser")
        steps_a = [(s.block.label, s.taken) for s in ExecutionEngine(a, seed=4, max_steps=5000).run()]
        steps_b = [(s.block.label, s.taken) for s in ExecutionEngine(b, seed=4, max_steps=5000).run()]
        assert steps_a == steps_b


class TestSuiteSelectionProperties:
    """End-to-end sanity at reduced scale: the headline orderings hold."""

    @pytest.fixture(scope="class")
    def small_runs(self):
        config = SystemConfig()
        results = {}
        for name in ("gzip", "mcf", "eon"):
            program = build_benchmark(name, scale=0.25)
            results[name] = {
                sel: simulate(program, sel, config, seed=1)
                for sel in ("net", "lei")
            }
        return results

    def test_hit_rates_high(self, small_runs):
        for name, by_sel in small_runs.items():
            for sel, result in by_sel.items():
                assert result.hit_rate > 0.9, (name, sel)

    def test_lei_fewer_transitions_on_mcf(self, small_runs):
        assert (small_runs["mcf"]["lei"].region_transitions
                < small_runs["mcf"]["net"].region_transitions)

    def test_lei_spans_more_cycles_in_aggregate(self, small_runs):
        # Per-benchmark ratios are noisy at 1/4 scale (LEI also selects
        # fewer regions, shifting the denominator); assert the paper's
        # overall ordering on the pooled counts.
        def pooled(selector):
            spans = regions = 0
            for by_sel in small_runs.values():
                result = by_sel[selector]
                spans += sum(1 for r in result.regions if r.spans_cycle)
                regions += len(result.regions)
            return spans / regions

        assert pooled("lei") > pooled("net")
