"""Tests for the program model: builder, layout, resolution, validation."""

import pytest

from repro.behavior.models import Bernoulli, LoopTrip, TableIndirect
from repro.errors import LayoutError, ProgramStructureError
from repro.isa.opcodes import BranchKind
from repro.program.builder import ProgramBuilder
from repro.program.dot import program_to_dot
from repro.program.layout import DEFAULT_BASE_ADDRESS, PROCEDURE_PADDING
from repro.program.validate import unreachable_blocks


class TestBuilder:
    def test_builds_and_resolves_targets(self, simple_loop_program):
        head = simple_loop_program.block_by_full_label("main:head")
        assert head.terminator.taken_target is head

    def test_duplicate_block_label_rejected(self):
        pb = ProgramBuilder("dup")
        main = pb.procedure("main")
        main.block("A")
        with pytest.raises(ProgramStructureError):
            main.block("A")

    def test_duplicate_terminator_rejected(self):
        pb = ProgramBuilder("term")
        main = pb.procedure("main")
        handle = main.block("A").jump("A")
        with pytest.raises(ProgramStructureError):
            handle.halt()

    def test_unresolved_target_reported(self):
        pb = ProgramBuilder("bad")
        main = pb.procedure("main")
        main.block("A").jump("nowhere")
        main.block("B").halt()
        with pytest.raises(ProgramStructureError, match="nowhere"):
            pb.build()

    def test_bare_name_prefers_local_label_over_procedure(self):
        pb = ProgramBuilder("shadow")
        helper = pb.procedure("helper")
        helper.block("entry").ret()
        main = pb.procedure("main")
        # A local block named "helper" shadows the procedure name.
        main.block("start").jump("helper")
        main.block("helper").halt()
        program = pb.build()
        start = program.block_by_full_label("main:start")
        assert start.terminator.taken_target is program.block_by_full_label("main:helper")

    def test_explicit_proc_label_reference(self):
        pb = ProgramBuilder("explicit")
        helper = pb.procedure("helper")
        helper.block("entry")
        helper.block("inner").ret()
        main = pb.procedure("main")
        main.block("start").jump("helper:inner")
        main.block("end").halt()
        program = pb.build()
        start = program.block_by_full_label("main:start")
        assert start.terminator.taken_target.label == "inner"

    def test_proc_colon_means_entry(self):
        pb = ProgramBuilder("entryref")
        helper = pb.procedure("helper")
        helper.block("first").ret()
        main = pb.procedure("main")
        main.block("start").jump("helper:")
        main.block("end").halt()
        program = pb.build()
        start = program.block_by_full_label("main:start")
        assert start.terminator.taken_target.label == "first"

    def test_block_handle_as_target(self):
        pb = ProgramBuilder("handles")
        main = pb.procedure("main")
        a = main.block("A")
        main.block("B").jump(a)
        program = pb.build()
        b = program.block_by_full_label("main:B")
        assert b.terminator.taken_target is a.raw_block

    def test_linear_declares_fallthrough_chain(self):
        pb = ProgramBuilder("linear")
        main = pb.procedure("main")
        main.linear(["A", "B", "C"], insts=2)
        main.block("end").halt()
        program = pb.build()
        a = program.block_by_full_label("main:A")
        assert a.fallthrough is program.block_by_full_label("main:B")

    def test_indirect_with_weight_dict(self):
        pb = ProgramBuilder("ind")
        main = pb.procedure("main")
        main.block("sw", insts=2).indirect({"L1": 0.5, "L2": 0.5})
        main.block("L1").halt()
        main.block("L2").halt()
        program = pb.build()
        sw = program.block_by_full_label("main:sw")
        assert len(sw.terminator.indirect_targets) == 2
        assert isinstance(sw.terminator.indirect_model, TableIndirect)

    def test_indirect_sequence_requires_model(self):
        pb = ProgramBuilder("ind2")
        main = pb.procedure("main")
        with pytest.raises(ProgramStructureError):
            main.block("sw").indirect(["L1", "L2"])


class TestLayout:
    def test_addresses_increase_in_declaration_order(self, call_loop_program):
        blocks = call_loop_program.blocks
        addresses = [b.address for b in blocks]
        assert addresses == sorted(addresses)
        assert addresses[0] == DEFAULT_BASE_ADDRESS

    def test_block_ids_dense(self, call_loop_program):
        for index, block in enumerate(call_loop_program.blocks):
            assert block.block_id == index
            assert call_loop_program.block_by_id(index) is block

    def test_procedure_padding_separates_procedures(self, call_loop_program):
        helper_last = call_loop_program.block_by_full_label("helper:F")
        main_first = call_loop_program.block_by_full_label("main:A")
        gap = main_first.address - (helper_last.address + helper_last.byte_size)
        assert gap == PROCEDURE_PADDING

    def test_backward_call_when_callee_declared_first(self, call_loop_program):
        # Figure 2: helper is at lower addresses, so the call is backward.
        call_block = call_loop_program.block_by_full_label("main:B")
        callee = call_loop_program.block_by_full_label("helper:E")
        assert call_block.is_backward_transfer_to(callee)

    def test_self_loop_is_backward(self, simple_loop_program):
        head = simple_loop_program.block_by_full_label("main:head")
        assert head.is_backward_transfer_to(head)

    def test_forward_branch_is_not_backward(self, straight_line_program):
        a = straight_line_program.block_by_full_label("main:A")
        c = straight_line_program.block_by_full_label("main:C")
        assert not a.is_backward_transfer_to(c)

    def test_direction_query_requires_layout(self):
        pb = ProgramBuilder("unlaid")
        main = pb.procedure("main")
        a = main.block("A").halt()
        with pytest.raises(LayoutError):
            a.raw_block.is_backward_transfer_to(a.raw_block)


class TestProgramAccessors:
    def test_entry_overridable_independent_of_layout(self, call_loop_program):
        # helper lays out first, but main is the declared entry.
        assert call_loop_program.entry.full_label == "main:A"
        assert call_loop_program.blocks[0].full_label == "helper:E"

    def test_entry_defaults_to_first_procedure(self, straight_line_program):
        assert straight_line_program.entry.full_label == "main:A"

    def test_missing_entry_procedure_rejected(self):
        pb = ProgramBuilder("noentry", entry="ghost")
        main = pb.procedure("main")
        main.block("A").halt()
        with pytest.raises(ProgramStructureError, match="ghost"):
            pb.build()

    def test_instruction_count_sums_blocks(self, straight_line_program):
        assert straight_line_program.instruction_count == 6

    def test_static_successors_cond(self, nested_loop_program):
        b = nested_loop_program.block_by_full_label("main:B")
        succs = nested_loop_program.static_successors(b)
        assert b in succs  # self loop
        assert nested_loop_program.block_by_full_label("main:C") in succs

    def test_static_successors_return_empty(self, call_loop_program):
        f = call_loop_program.block_by_full_label("helper:F")
        assert call_loop_program.static_successors(f) == []

    def test_double_finalize_rejected(self, straight_line_program):
        with pytest.raises(ProgramStructureError):
            straight_line_program.finalize()

    def test_unknown_procedure_lookup(self, straight_line_program):
        with pytest.raises(ProgramStructureError):
            straight_line_program.procedure("nope")

    def test_block_by_id_out_of_range(self, straight_line_program):
        with pytest.raises(ProgramStructureError):
            straight_line_program.block_by_id(999)


class TestValidation:
    def test_cond_as_last_block_rejected(self):
        pb = ProgramBuilder("badcond")
        main = pb.procedure("main")
        main.block("A").cond("A", model=Bernoulli(0.5))
        with pytest.raises(ProgramStructureError, match="fall-through"):
            pb.build()

    def test_fallthrough_as_last_block_rejected(self):
        pb = ProgramBuilder("badfall")
        main = pb.procedure("main")
        main.block("A")  # implicit fall-through, but nothing follows
        with pytest.raises(ProgramStructureError):
            pb.build()

    def test_call_must_target_procedure_entry(self):
        pb = ProgramBuilder("badcall")
        helper = pb.procedure("helper")
        helper.block("entry")
        helper.block("inner").ret()
        main = pb.procedure("main")
        main.block("A").call("helper:inner")
        main.block("B").halt()
        with pytest.raises(ProgramStructureError, match="not a procedure entry"):
            pb.build()

    def test_call_needs_return_site(self):
        pb = ProgramBuilder("badcall2")
        helper = pb.procedure("helper")
        helper.block("entry").ret()
        main = pb.procedure("main")
        main.block("A").call("helper")  # nothing to return to
        with pytest.raises(ProgramStructureError, match="return"):
            pb.build()

    def test_indirect_weight_count_checked(self):
        pb = ProgramBuilder("badind")
        main = pb.procedure("main")
        main.block("sw").indirect(["L1", "L2"], model=TableIndirect([1.0]))
        main.block("L1").halt()
        main.block("L2").halt()
        with pytest.raises(ProgramStructureError, match="weights"):
            pb.build()

    def test_empty_program_rejected(self):
        pb = ProgramBuilder("empty")
        with pytest.raises(ProgramStructureError):
            pb.build()

    def test_unreachable_blocks_detected(self):
        pb = ProgramBuilder("island")
        main = pb.procedure("main")
        main.block("A").halt()
        main.block("orphan").halt()
        program = pb.build()
        orphans = unreachable_blocks(program)
        assert {b.label for b in orphans} == {"orphan"}

    def test_return_sites_considered_reachable(self, call_loop_program):
        # main:D is only reached via helper's return; it must not be
        # reported unreachable.
        assert unreachable_blocks(call_loop_program) == set()


class TestDotExport:
    def test_dot_contains_all_blocks_and_is_wellformed(self, diamond_program):
        dot = program_to_dot(diamond_program, title="diamond")
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for block in diamond_program.blocks:
            assert block.label.replace(".", "_") in dot

    def test_highlight_marks_fill(self, simple_loop_program):
        head = simple_loop_program.block_by_full_label("main:head")
        dot = program_to_dot(simple_loop_program, highlight={head})
        assert "fillcolor" in dot
