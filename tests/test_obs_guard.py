"""Guard: observability must never change results, and must cost ~nothing off.

Two properties protect the simulator against instrumentation rot:

1. *Identity* — running with every pillar enabled produces the exact same
   ``RunResult`` numbers as running with the default null observer.
2. *Fast path* — with the null observer the hot loop executes no emission
   code at all (checked structurally with a tripwire observer) and stays
   within 10% of the enabled-mode step throughput (checked with a
   best-of-N timing comparison, phrased to be robust on shared CI boxes).
"""

from __future__ import annotations

import time

import pytest

from repro.config import SystemConfig
from repro.obs import MetricsRegistry, Observer, SpanTimer, full_observer
from repro.obs.sink import CollectingSink
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark


def result_fingerprint(result):
    """Every externally meaningful number a run produces."""
    return {
        "interp_steps": result.stats.interp_steps,
        "cache_steps": result.stats.cache_steps,
        "interp_instructions": result.stats.interp_instructions,
        "cache_instructions": result.stats.cache_instructions,
        "cache_entries": result.stats.cache_entries,
        "cache_exits": result.stats.cache_exits,
        "region_transitions": result.stats.region_transitions,
        "regions": [
            (r.entry.full_label, r.selection_order, r.selected_at_step,
             r.kind, r.instruction_count)
            for r in result.regions
        ],
        "samples": [(s.step, s.cache_steps, s.regions) for s in result.samples],
        "evictions": result.cache_evictions,
        "flushes": result.cache_flushes,
        "diagnostics": result.selector_diagnostics,
    }


class TestObservabilityChangesNothing:
    @pytest.mark.parametrize("bench", benchmark_names())
    def test_enabled_vs_disabled_identical_results(self, bench):
        program = build_benchmark(bench, scale=0.05)
        plain = simulate(program, "lei", seed=1)
        observed = simulate(program, "lei", seed=1,
                            observer=full_observer(profile=True))
        assert result_fingerprint(observed) == result_fingerprint(plain)

    @pytest.mark.parametrize("selector", ["net", "lei", "combined-net",
                                          "combined-lei"])
    def test_identity_across_selectors(self, selector):
        program = build_benchmark("gzip", scale=0.05)
        config = SystemConfig(cache_capacity_bytes=300)
        plain = simulate(program, selector, config, seed=1)
        observed = simulate(program, selector, config, seed=1,
                            observer=full_observer(profile=True))
        assert result_fingerprint(observed) == result_fingerprint(plain)

    def test_metric_counters_reconcile(self):
        program = build_benchmark("mcf", scale=0.05)
        obs = Observer(metrics=MetricsRegistry())
        result = simulate(program, "lei", seed=1, observer=obs)
        snap = result.metrics
        assert sum(snap["regions_installed_total"]["values"].values()) == (
            result.region_count
        )
        assert snap["cache_exits_total"]["values"][""] == result.stats.cache_exits


class _TripwireObserver(Observer):
    """Looks disabled, but detonates if an unguarded emission path runs.

    ``emit`` is the raw write — every call site must gate it behind
    ``events_enabled``, so reaching it here means a guard is missing.
    ``span``/``count``/``event`` are self-guarding no-ops by contract and
    are allowed through (they only appear on rare paths such as region
    installation, never per step).
    """

    def emit(self, kind, step, **fields):
        raise AssertionError(
            "disabled observer reached emit(%r) — fast path broken" % kind
        )


class TestDisabledFastPath:
    def test_hot_loop_never_calls_into_a_disabled_observer(self):
        program = build_benchmark("gzip", scale=0.05)
        config = SystemConfig(cache_capacity_bytes=300)
        for selector in ("net", "lei", "combined-lei"):
            simulate(program, selector, config, seed=1,
                     observer=_TripwireObserver())

    def test_disabled_overhead_under_ten_percent(self):
        program = build_benchmark("gzip", scale=0.1)

        def best_of(runs, observer_factory):
            best = float("inf")
            for _ in range(runs):
                observer = observer_factory()
                start = time.perf_counter()
                simulate(program, "lei", seed=1, observer=observer)
                best = min(best, time.perf_counter() - start)
            return best

        # Warm caches/imports so neither side pays first-run costs.
        simulate(program, "lei", seed=1)

        disabled = best_of(3, lambda: None)
        enabled = best_of(3, lambda: Observer(
            metrics=MetricsRegistry(),
            sink=CollectingSink(),
            profiler=SpanTimer(),
        ))
        # Disabled mode must not be more than 10% slower than enabled mode
        # (it should in fact be faster; the inequality direction is the
        # guard the issue asks for, stated against the noisier bound).
        assert disabled <= enabled * 1.10, (
            "disabled %.4fs vs enabled %.4fs" % (disabled, enabled)
        )
