"""Tests for the dispatch state machine of the system simulator."""

import pytest

from repro.config import SystemConfig
from repro.execution.engine import ExecutionEngine
from repro.system.simulator import Simulator, simulate
from repro.tracing.collector import collect_trace, replay_trace


@pytest.fixture
def fast_config():
    return SystemConfig(net_threshold=5, lei_threshold=4)


class TestInstructionAccounting:
    def test_every_instruction_counted_exactly_once(self, simple_loop_program, fast_config):
        engine = ExecutionEngine(simple_loop_program)
        result = Simulator(simple_loop_program, "net", fast_config).run(engine.run())
        assert result.total_instructions_executed == engine.instructions_executed

    def test_hit_rate_between_zero_and_one(self, diamond_program, fast_config):
        result = simulate(diamond_program, "net", fast_config)
        assert 0.0 <= result.hit_rate <= 1.0

    def test_hot_loop_hit_rate_is_high(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        # 100 iterations, selected after ~6: the vast majority of the
        # head block's executions come from the cache.
        assert result.hit_rate > 0.85

    def test_no_selection_means_all_interpreted(self, straight_line_program, fast_config):
        result = simulate(straight_line_program, "net", fast_config)
        assert result.stats.cache_instructions == 0
        assert result.stats.interp_instructions == 6

    def test_per_region_instructions_sum_to_cache_total(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        per_region = sum(r.executed_instructions for r in result.regions)
        assert per_region == result.stats.cache_instructions


class TestDispatchAccounting:
    def test_entries_exits_transitions_consistent(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        stats = result.stats
        entry_total = sum(r.entry_count for r in result.regions)
        assert entry_total == stats.cache_entries + stats.region_transitions
        # Exits to the interpreter can exceed entries by at most the
        # final in-cache program end.
        end_total = sum(r.exit_count for r in result.regions)
        assert end_total >= stats.cache_exits

    def test_cycle_backs_counted_as_internal(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        region = result.regions[0]
        assert region.cycle_backs > 0
        assert result.region_transitions == 0

    def test_edge_profile_covers_all_transfers(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        head = simple_loop_program.block_by_full_label("main:head")
        done = simple_loop_program.block_by_full_label("main:done")
        assert result.edge_profile[(head, head)] == 99
        assert result.edge_profile[(head, done)] == 1

    def test_program_end_inside_cache_counts_exit(self, fast_config):
        # A loop that runs to max_steps while inside a region: the
        # stream just ends; no crash, accounting stays consistent.
        from repro.behavior.models import LoopTrip
        from repro.program.builder import ProgramBuilder

        pb = ProgramBuilder("endless")
        main = pb.procedure("main")
        main.block("head", insts=2).cond("head", model=LoopTrip(10_000))
        main.block("done", insts=1).halt()
        program = pb.build()
        result = simulate(program, "net", fast_config, max_steps=500)
        assert result.region_count == 1
        assert result.total_instructions_executed == 1000


class TestSelectorEquivalenceAcrossSources:
    def test_live_and_replayed_streams_give_identical_results(
        self, diamond_program, fast_config, tmp_path
    ):
        path = tmp_path / "diamond.rtrc"
        collect_trace(ExecutionEngine(diamond_program, seed=11), path)

        live = Simulator(diamond_program, "lei", fast_config).run(
            ExecutionEngine(diamond_program, seed=11).run()
        )
        replayed = Simulator(diamond_program, "lei", fast_config).run(
            replay_trace(path, diamond_program)
        )
        assert live.region_count == replayed.region_count
        assert live.region_transitions == replayed.region_transitions
        assert live.hit_rate == replayed.hit_rate
        assert live.code_expansion == replayed.code_expansion

    def test_simulation_is_deterministic(self, diamond_program, fast_config):
        a = simulate(diamond_program, "net", fast_config, seed=3)
        b = simulate(diamond_program, "net", fast_config, seed=3)
        assert a.region_transitions == b.region_transitions
        assert a.hit_rate == b.hit_rate
        assert [r.entry for r in a.regions] == [r.entry for r in b.regions]


class TestSelectorRegistry:
    @pytest.mark.parametrize(
        "name", ["net", "lei", "combined-net", "combined-lei"]
    )
    def test_all_registered_selectors_run(self, name, diamond_program, fast_config):
        result = simulate(diamond_program, name, fast_config)
        assert result.selector_name == name
        assert result.total_instructions_executed > 0

    def test_unknown_selector_rejected(self, diamond_program):
        from repro.errors import SelectionError

        with pytest.raises(SelectionError, match="unknown selector"):
            simulate(diamond_program, "hotpath-3000")

    def test_default_config_is_paper_config(self, simple_loop_program):
        result = simulate(simple_loop_program, "net")
        # Threshold 50 against 100 iterations: selected, exactly one region.
        assert result.region_count == 1
