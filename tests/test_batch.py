"""Tests for the vectorized batched fleet (repro.batch).

The batched backend's contract is *bit-identity*: for every cell it
must produce exactly the MetricReport the serial pipeline produces.
These tests enforce that across benchmarks, selectors, bounded caches
under eviction, step budgets, both array substrates, and the error
path — plus the SplitMix64 lane-RNG equivalence the whole scheme
rests on.  See ``docs/batching.md``.
"""

import os

import pytest

from repro.batch import (
    BatchCell,
    HAVE_NUMPY,
    available_backends,
    build_fleet_program,
    get_backend,
    run_fleet,
)
from repro.batch import backend as backend_mod
from repro.batch import kernel as kernel_mod
from repro.batch.backend import LaneRng
from repro.behavior.rng import SplitMix64
from repro.config import SystemConfig
from repro.errors import ConfigError, ExecutionError
from repro.execution.engine import ExecutionEngine
from repro.metrics.summary import MetricReport
from repro.obs import CollectingSink, Observer
from repro.system.simulator import simulate

BACKENDS = available_backends()

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@pytest.fixture(params=["vector", "cutover"])
def lane_regime(request, monkeypatch):
    """Run the identity suite under both kernel regimes.

    ``SCALAR_CUTOVER`` sends small fleets down the per-lane scalar
    fallback, so a test-sized fleet would never exercise the vector
    rounds at all; the ``vector`` regime forces the cutover to zero so
    the same fleets run the full vectorized path, and ``cutover``
    keeps the shipped default (all-scalar at these sizes).
    """
    if request.param == "vector":
        monkeypatch.setattr(kernel_mod, "SCALAR_CUTOVER", 0)
    return request.param


def serial_report(cell: BatchCell, config=None, max_steps=None) -> MetricReport:
    """The oracle: one serial fused-pipeline run of the same cell."""
    program = build_fleet_program(cell.benchmark, cell.scale)
    result = simulate(program, cell.selector, config, seed=cell.seed,
                      max_steps=max_steps)
    return MetricReport.from_result(result)


def assert_fleet_matches_serial(cells, config=None, backend="auto",
                                max_steps=None):
    fleet = run_fleet(cells, config=config, backend=backend,
                      max_steps=max_steps)
    for cell in cells:
        assert fleet.reports[cell] == serial_report(
            cell, config=config, max_steps=max_steps
        ), f"batched report diverged from serial for {cell!r}"
    return fleet


class TestBackendResolution:
    def test_auto_prefers_numpy_when_available(self):
        assert get_backend("auto") == BACKENDS[0]

    def test_python_always_available(self):
        assert get_backend("python") == "python"
        assert "python" in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            get_backend("cuda")

    def test_explicit_numpy_without_numpy_is_an_error(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "HAVE_NUMPY", False)
        with pytest.raises(ConfigError, match="numpy"):
            get_backend("numpy")
        # auto degrades silently — that's the whole point of "auto".
        assert get_backend("auto") == "python"


@needs_numpy
class TestLaneRngEquivalence:
    """LaneRng over a shared state column == the scalar SplitMix64."""

    def _pair(self, seed):
        import numpy as np

        states = np.zeros(4, dtype=np.uint64)
        states[2] = np.uint64(seed)
        return SplitMix64(seed), LaneRng(states, 2), states

    @pytest.mark.parametrize("seed", [0, 1, 42, 2**64 - 1, 0xDEADBEEF])
    def test_scalar_methods_match(self, seed):
        scalar, lane, _ = self._pair(seed)
        for _ in range(50):
            assert lane.next_u64() == scalar.next_u64()
            assert lane.random() == scalar.random()
            assert lane.randint(3, 17) == scalar.randint(3, 17)
            assert lane.bernoulli(0.3) == scalar.bernoulli(0.3)
        weights = (0.2, 0.5, 1.0)
        for _ in range(20):
            assert (lane.weighted_index(weights)
                    == scalar.weighted_index(weights))

    def test_fork_matches(self):
        scalar, lane, _ = self._pair(7)
        assert lane.fork().next_u64() == scalar.fork().next_u64()

    def test_vector_draws_match_lane_draws(self):
        import numpy as np

        from repro.batch.backend import vector_next_u64, vector_random

        seeds = [0, 5, 99, 2**63, 12345, 8, 8, 1]
        states = np.array(seeds, dtype=np.uint64)
        mirror = states.copy()
        idx = np.arange(len(seeds), dtype=np.int64)
        vec_f = vector_random(states, idx)
        vec_u = vector_next_u64(states, idx)
        for i, seed in enumerate(seeds):
            lane = LaneRng(mirror, i)
            assert vec_f[i] == lane.random()
            assert vec_u[i] == lane.next_u64()
        # The shared column advanced identically on both paths.
        assert (states == mirror).all()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.usefixtures("lane_regime")
class TestFleetBitIdentity:
    def test_micro_motifs_all_selectors(self, backend):
        cells = [
            BatchCell(f"micro:{motif}", selector, scale=0.3, seed=seed)
            for motif in ("figure2", "figure4", "self_loop", "linked_chain",
                          "recursion")
            for selector in ("net", "lei", "combined-net")
            for seed in (1, 9)
        ]
        assert_fleet_matches_serial(cells, backend=backend)

    def test_spec_benchmarks(self, backend):
        cells = [
            BatchCell(bench, selector, scale=0.05, seed=3)
            for bench in ("gzip", "mcf")
            for selector in ("net", "lei")
        ]
        assert_fleet_matches_serial(cells, backend=backend)

    @pytest.mark.parametrize("policy", ["flush", "fifo"])
    def test_bounded_cache_under_eviction(self, backend, policy):
        config = SystemConfig(cache_capacity_bytes=2000,
                              cache_eviction_policy=policy)
        cells = [
            BatchCell(bench, "net", scale=0.05, seed=7)
            for bench in ("gzip", "bzip2")
        ] + [BatchCell("micro:linked_chain", "lei", scale=0.5, seed=7)]
        assert_fleet_matches_serial(cells, config=config, backend=backend)

    @pytest.mark.parametrize("max_steps", [1, 7, 997])
    def test_step_budget_truncation(self, backend, max_steps):
        cells = [
            BatchCell("micro:alternating", "net", scale=0.3, seed=1),
            BatchCell("gzip", "lei", scale=0.05, seed=2),
        ]
        assert_fleet_matches_serial(cells, backend=backend,
                                    max_steps=max_steps)


@needs_numpy
def test_numpy_and_python_backends_agree():
    cells = [
        BatchCell("micro:figure3", sel, scale=0.3, seed=s)
        for sel in ("net", "lei") for s in (1, 2)
    ]
    by_numpy = run_fleet(cells, backend="numpy")
    by_python = run_fleet(cells, backend="python")
    assert by_numpy.backend == "numpy"
    assert by_python.backend == "python"
    for cell in cells:
        assert by_numpy.reports[cell] == by_python.reports[cell]


class TestFleetValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigError, match="at least one cell"):
            run_fleet([])

    def test_duplicate_cell_rejected(self):
        cell = BatchCell("gzip", "net", scale=0.05, seed=1)
        with pytest.raises(ConfigError, match="duplicate"):
            run_fleet([cell, cell])


class TestFleetResultAndEvents:
    def test_fleet_result_aggregates(self):
        cells = [BatchCell("micro:self_loop", "net", scale=0.3, seed=s)
                 for s in (1, 2, 3)]
        fleet = run_fleet(cells)
        assert fleet.lanes == 3
        assert fleet.rounds >= 1
        assert fleet.wall_seconds > 0
        per_lane = [fleet.results[c].stats.interp_steps
                    + fleet.results[c].stats.cache_steps for c in cells]
        assert fleet.steps == sum(per_lane)
        assert fleet.events_per_second > 0

    def test_obs_events_at_batch_granularity(self):
        sink = CollectingSink()
        cells = [BatchCell("micro:figure2", "net", scale=0.3, seed=s)
                 for s in (1, 2)]
        run_fleet(cells, observer=Observer(sink=sink))
        started = sink.by_kind("fleet_started")
        finished = sink.by_kind("fleet_finished")
        lanes = sink.by_kind("fleet_lane_finished")
        assert len(started) == len(finished) == 1
        assert started[0].payload["lanes"] == 2
        assert len(lanes) == 2
        assert {e.payload["seed"] for e in lanes} == {1, 2}
        assert finished[0].payload["steps"] > 0


class TestRetireBeforeFold:
    """Mid-run eviction folds pending vector counts *first*.

    A bounded cache snapshots region stats at the eviction moment (the
    ``cache_evicted`` event, regeneration accounting); counts still
    banked in the kernel's arena columns at that point must be folded
    into the region before it loses residency — folding later would
    resurrect a retired region's totals, folding twice would double
    count.  The spy holds the batched pipeline to the serial oracle at
    every single eviction, not just at end of run.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("policy", ["flush", "fifo"])
    def test_eviction_moment_stats_match_serial(self, backend, policy,
                                                monkeypatch):
        from repro.cache.codecache import BoundedCodeCache

        monkeypatch.setattr(kernel_mod, "SCALAR_CUTOVER", 0)
        by_cache = {}
        orig = BoundedCodeCache._retire_region

        def spy(cache, victim, evict_policy):
            orig(cache, victim, evict_policy)
            by_cache.setdefault(id(cache), []).append((
                victim.entry.full_label, evict_policy,
                victim.entry_count, victim.exit_count,
                victim.cycle_backs, victim.executed_instructions,
            ))

        monkeypatch.setattr(BoundedCodeCache, "_retire_region", spy)
        config = SystemConfig(cache_capacity_bytes=500,
                              cache_eviction_policy=policy)
        cells = ([BatchCell("gzip", "net", scale=0.05, seed=seed)
                  for seed in (3, 7)]
                 + [BatchCell("bzip2", "net", scale=0.1, seed=3)])
        serial_seqs = []
        for cell in cells:
            by_cache.clear()
            program = build_fleet_program(cell.benchmark, cell.scale)
            simulate(program, cell.selector, config, seed=cell.seed)
            assert len(by_cache) <= 1
            serial_seqs.extend(by_cache.values())
        assert serial_seqs, "workloads too small to trigger eviction"
        by_cache.clear()
        run_fleet(cells, config=config, backend=backend)
        assert sorted(by_cache.values()) == sorted(serial_seqs)


class TestCompactionIdentity:
    """Lane compaction re-sorts slots without disturbing any lane."""

    def _fragmenting_cells(self):
        # Two long lanes pinned to the extreme slots with short lanes
        # between them: the shorts finish early, leaving the vector-mode
        # survivors spanning the whole slot range (span >> 2 * count,
        # the kernel's fragmentation trigger).
        return [
            BatchCell("micro:linked_chain", "net",
                      scale=0.5 if seed in (0, 15) else 0.02, seed=seed)
            for seed in range(16)
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compaction_toggle_is_bit_identical(self, backend, monkeypatch):
        monkeypatch.setattr(kernel_mod, "SCALAR_CUTOVER", 0)
        monkeypatch.setattr(kernel_mod, "COMPACT_EVERY", 1)
        compactions = []
        orig = kernel_mod.FleetKernel._compact

        def spy(kernel):
            compactions.append(kernel.rounds)
            orig(kernel)

        monkeypatch.setattr(kernel_mod.FleetKernel, "_compact", spy)
        cells = self._fragmenting_cells()
        on = run_fleet(cells, backend=backend, compaction=True)
        off = run_fleet(cells, backend=backend, compaction=False)
        if backend == "numpy":
            assert compactions, "fleet never fragmented; test is inert"
        for cell in cells:
            assert on.reports[cell] == off.reports[cell]
            assert on.reports[cell] == serial_report(cell)


class TestErrorContextParity:
    """A fleet abort carries the same diagnostic context as a serial one."""

    @pytest.fixture
    def tiny_call_depth(self, monkeypatch):
        orig = ExecutionEngine.__init__

        def patched(self, *args, **kwargs):
            kwargs["max_call_depth"] = 3
            orig(self, *args, **kwargs)

        monkeypatch.setattr(ExecutionEngine, "__init__", patched)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.usefixtures("lane_regime")
    def test_call_overflow_matches_serial(self, tiny_call_depth, backend):
        program = build_fleet_program("micro:recursion", 0.3)
        with pytest.raises(ExecutionError) as serial_exc:
            simulate(program, "net", seed=2)
        cells = [BatchCell("micro:recursion", "net", scale=0.3, seed=s)
                 for s in (2, 3, 4, 5)]
        with pytest.raises(ExecutionError) as fleet_exc:
            run_fleet(cells, backend=backend)
        # Same canonical message body...
        assert (str(fleet_exc.value).split(" [")[0]
                == str(serial_exc.value).split(" [")[0])
        # ...and the same context keys: benchmark, selector and the
        # failing lane's cache clock (clock advancement is lazy in both
        # pipelines, so the step may trail serial's by a point or two).
        assert fleet_exc.value.context["benchmark"] == "micro_recursion"
        assert fleet_exc.value.context["selector"] == "net"
        serial_step = serial_exc.value.context["step"]
        assert abs(fleet_exc.value.context["step"] - serial_step) <= 2


class TestGridStoreDigestIdentity:
    """run_grid(backend="batched") persists byte-identical store files."""

    def _store_files(self, root):
        files = {}
        for dirpath, _, names in os.walk(root):
            for name in names:
                path = os.path.join(dirpath, name)
                with open(path, "rb") as handle:
                    files[os.path.relpath(path, root)] = handle.read()
        return files

    def test_batched_grid_store_matches_serial(self, tmp_path):
        from repro.experiments.runner import run_grid

        kwargs = dict(
            scale=0.05, seed=5, benchmarks=("gzip", "bzip2"),
            selectors=("net", "lei"), code_version="v1",
        )
        serial = run_grid(store=str(tmp_path / "serial"),
                          backend="serial", **kwargs)
        batched = run_grid(store=str(tmp_path / "batched"),
                           backend="batched", **kwargs)
        assert serial.reports == batched.reports
        serial_files = self._store_files(str(tmp_path / "serial"))
        batched_files = self._store_files(str(tmp_path / "batched"))
        assert serial_files == batched_files
