"""Tests for the content-addressed result store (repro.store)."""

import json
import os

import pytest

from repro.config import SystemConfig
from repro.errors import StoreError
from repro.obs import CollectingSink, Observer
from repro.store import CellKey, ResultStore, cell_key, default_code_version
from repro.system.simulator import simulate
from repro.metrics.summary import MetricReport
from repro.workloads import build_benchmark


@pytest.fixture(scope="module")
def report():
    program = build_benchmark("gzip", scale=0.05)
    return MetricReport.from_result(simulate(program, "net", seed=1))


def make_key(**overrides):
    params = dict(benchmark="gzip", selector="net", scale=0.05, seed=1,
                  config=SystemConfig(), code_version="v1")
    params.update(overrides)
    return cell_key(**params)


class TestCellKey:
    def test_digest_is_stable(self):
        assert make_key().digest == make_key().digest

    def test_every_parameter_changes_the_address(self):
        base = make_key().digest
        assert make_key(benchmark="mcf").digest != base
        assert make_key(selector="lei").digest != base
        assert make_key(scale=0.06).digest != base
        assert make_key(seed=2).digest != base
        assert make_key(config=SystemConfig(net_threshold=51)).digest != base
        assert make_key(code_version="v2").digest != base

    def test_default_code_version_used_and_cached(self):
        key = cell_key("gzip", "net", 0.05, 1, SystemConfig())
        assert key.code_version == default_code_version()
        assert default_code_version() == default_code_version()

    def test_key_dict_is_self_describing(self):
        data = make_key().to_dict()
        assert data["benchmark"] == "gzip"
        assert data["config"]["net_threshold"] == 50
        assert data["code_version"] == "v1"


class TestResultStore:
    def test_miss_then_put_then_bit_identical_hit(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        key = make_key()
        assert store.get(key) is None
        store.put(key, report)
        loaded = store.get(key)
        assert loaded == report  # dataclass equality: every field exact
        assert store.stats.as_dict() == {
            "hits": 1, "misses": 1, "puts": 1, "corrupt": 0,
            "gc_passes": 0, "gc_evicted": 0,
        }

    def test_layout_is_sharded_by_digest_prefix(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        key = make_key()
        path = store.put(key, report)
        digest = key.digest
        assert path.endswith(os.path.join(digest[:2], digest + ".json"))
        assert os.path.exists(path)
        assert len(store) == 1

    def test_entry_records_its_own_key(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        key = make_key()
        with open(store.put(key, report), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["key"] == key.to_dict()
        assert payload["digest"] == key.digest

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        key = make_key()
        path = store.put(key, report)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        # Recompute-and-overwrite heals the entry.
        store.put(key, report)
        assert store.get(key) == report

    def test_foreign_schema_entry_is_a_miss(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        key = make_key()
        path = store.put(key, report)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"store_version": 999, "report": {}}, handle)
        assert store.get(key) is None
        assert store.stats.corrupt == 1

    def test_no_temp_files_left_behind(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        store.put(make_key(), report)
        leftovers = [
            name
            for _, _, names in os.walk(tmp_path)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_clear_removes_every_entry(self, tmp_path, report):
        store = ResultStore(str(tmp_path))
        store.put(make_key(), report)
        store.put(make_key(selector="lei"), report)
        assert store.clear() == 2
        assert len(store) == 0

    def test_root_must_be_a_directory(self, tmp_path):
        file_path = tmp_path / "not-a-dir"
        file_path.write_text("x")
        with pytest.raises(StoreError):
            ResultStore(str(file_path))

    def test_store_traffic_emits_events(self, tmp_path, report):
        sink = CollectingSink()
        store = ResultStore(str(tmp_path), observer=Observer(sink=sink))
        key = make_key()
        store.put(key, report)
        store.get(key)
        kinds = [event.kind for event in sink.events]
        assert kinds == ["store_put", "store_hit"]
        assert sink.events[0].get("benchmark") == "gzip"
