"""The bench-regression sentinel (repro.bench.regress)."""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.bench.regress import (
    analyze_path,
    analyze_run,
    format_analysis,
    load_trajectory,
    robust_center,
    robust_spread,
)
from repro.errors import ConfigError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_workload(name="gzip-net", eps=1000.0, **overrides):
    record = {
        "name": name,
        "scale": 0.5,
        "seed": 1,
        "events_per_second": eps,
        "wall_seconds": 1.0,
        "steps": 1000,
        "hit_rate": 0.95,
        "region_count": 40,
        "total_instructions": 5000,
        "phases": {
            "interpret": {"seconds": 0.2, "entries": 10},
            "cache_walk": {"seconds": 0.8, "entries": 10},
        },
    }
    record.update(overrides)
    return record


def make_run(eps=1000.0, **overrides):
    return {
        "quick": False,
        "workloads": [make_workload(eps=eps, **overrides)],
        "totals": {"events_per_second": eps},
    }


def make_fleet(name="chain-net-fleet", eps=50000.0, **overrides):
    record = {
        "name": name,
        "groups": [{"benchmark": "micro:linked_chain", "selector": "net",
                    "lanes": 64, "scale": 0.5}],
        "lanes": 64,
        "max_lanes": 32,
        "refills": 32,
        "backend": "numpy",
        "rounds": 200,
        "steps": 100000,
        "wall_seconds": 2.0,
        "events_per_second": eps,
        "speedup": 1.5,
        "identical": True,
    }
    record.update(overrides)
    return record


def make_fleet_run(eps=1000.0, fleet_eps=50000.0, **fleet_overrides):
    run = make_run(eps=eps)
    run["batched"] = [make_fleet(eps=fleet_eps, **fleet_overrides)]
    return run


class TestLoadTrajectory:
    def test_single_run_normalizes_to_list(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps(make_run()))
        trajectory = load_trajectory(str(path))
        assert isinstance(trajectory, list) and len(trajectory) == 1

    def test_list_of_runs_kept_in_order(self, tmp_path):
        path = tmp_path / "runs.json"
        path.write_text(json.dumps([make_run(1000.0), make_run(900.0)]))
        trajectory = load_trajectory(str(path))
        assert [r["totals"]["events_per_second"] for r in trajectory] == [
            1000.0, 900.0]

    def test_missing_and_malformed_are_config_errors(self, tmp_path):
        with pytest.raises(ConfigError):
            load_trajectory(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError):
            load_trajectory(str(bad))
        scalar = tmp_path / "scalar.json"
        scalar.write_text("42")
        with pytest.raises(ConfigError):
            load_trajectory(str(scalar))


class TestRobustStats:
    def test_median(self):
        assert robust_center([]) == 0.0
        assert robust_center([3.0]) == 3.0
        assert robust_center([1.0, 100.0, 2.0]) == 2.0
        assert robust_center([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_scaled_mad(self):
        assert robust_spread([5.0, 5.0, 5.0]) == 0.0
        # MAD of [1,2,3] is 1; scaled by the normal-consistency factor.
        assert robust_spread([1.0, 2.0, 3.0]) == pytest.approx(1.4826)


class TestBaselineVerdicts:
    def test_identical_run_is_ok(self):
        run = make_run()
        analysis = analyze_run(run, baseline=copy.deepcopy(run))
        assert analysis["verdict"] == "ok"
        entry = analysis["workloads"]["gzip-net"]
        assert entry["baseline_ratio"] == 1.0
        assert entry["notes"] == []
        assert analysis["fingerprint_changes"] == []
        assert analysis["totals"]["baseline_ratio"] == 1.0

    def test_injected_regression_is_flagged(self):
        analysis = analyze_run(make_run(eps=400.0), baseline=make_run())
        entry = analysis["workloads"]["gzip-net"]
        assert analysis["verdict"] == "regression"
        assert entry["verdict"] == "regression"
        assert entry["baseline_ratio"] == 0.4
        assert any("40% of baseline" in note for note in entry["notes"])

    def test_moderate_drop_is_a_warning(self):
        analysis = analyze_run(make_run(eps=850.0), baseline=make_run())
        assert analysis["verdict"] == "warn"

    def test_incomparable_baseline_is_noted_not_compared(self):
        analysis = analyze_run(
            make_run(), baseline=make_run(scale=0.25))
        entry = analysis["workloads"]["gzip-net"]
        assert entry["baseline_ratio"] is None
        assert entry["verdict"] == "ok"
        assert "no comparable baseline workload" in entry["notes"]

    def test_fingerprint_change_is_reported(self):
        analysis = analyze_run(
            make_run(hit_rate=0.80), baseline=make_run())
        assert analysis["fingerprint_changes"] == [
            "gzip-net: hit_rate 0.95 -> 0.8"]

    def test_phase_share_growth_names_the_suspect(self):
        slow = make_run(eps=500.0)
        # All of the extra time lands in cache_walk.
        slow["workloads"][0]["wall_seconds"] = 2.0
        slow["workloads"][0]["phases"] = {
            "interpret": {"seconds": 0.1, "entries": 10},
            "cache_walk": {"seconds": 1.9, "entries": 10},
        }
        analysis = analyze_run(slow, baseline=make_run())
        entry = analysis["workloads"]["gzip-net"]
        assert "cache_walk" in entry["phase_share_growth"]
        assert any("cache_walk" in note for note in entry["notes"])


class TestBatchedFleetVerdicts:
    """Fleet records score by the same rules as workloads."""

    def test_identical_fleet_is_ok(self):
        run = make_fleet_run()
        analysis = analyze_run(run, baseline=copy.deepcopy(run))
        entry = analysis["batched"]["chain-net-fleet"]
        assert analysis["verdict"] == "ok"
        assert entry["baseline_ratio"] == 1.0
        assert entry["notes"] == []

    def test_fleet_regression_is_flagged(self):
        analysis = analyze_run(make_fleet_run(fleet_eps=20000.0),
                               baseline=make_fleet_run())
        entry = analysis["batched"]["chain-net-fleet"]
        assert analysis["verdict"] == "regression"
        assert entry["verdict"] == "regression"
        assert any("40% of baseline" in note for note in entry["notes"])

    def test_recomposed_fleet_is_additive_not_an_alarm(self):
        """A fleet whose groups changed (re-pinned) compares nothing."""
        changed = make_fleet_run()
        changed["batched"][0]["groups"][0]["scale"] = 0.25
        analysis = analyze_run(changed, baseline=make_fleet_run())
        entry = analysis["batched"]["chain-net-fleet"]
        assert entry["baseline_ratio"] is None
        assert entry["verdict"] == "ok"
        assert "no comparable baseline fleet" in entry["notes"]

    def test_admission_schedule_change_is_a_fingerprint(self):
        analysis = analyze_run(
            make_fleet_run(max_lanes=64, refills=0),
            baseline=make_fleet_run())
        assert ("fleet chain-net-fleet: max_lanes 32 -> 64"
                in analysis["fingerprint_changes"])
        assert ("fleet chain-net-fleet: refills 32 -> 0"
                in analysis["fingerprint_changes"])

    def test_fleet_trajectory_drop_is_flagged(self):
        history = [make_fleet_run(fleet_eps=eps)
                   for eps in (50000.0, 50200.0, 49800.0, 50100.0)]
        current = make_fleet_run(fleet_eps=30000.0)
        analysis = analyze_run(current, trajectory=history + [current])
        entry = analysis["batched"]["chain-net-fleet"]
        assert entry["verdict"] in ("warn", "regression")
        assert any("trailing" in note for note in entry["notes"])

    def test_fleet_rows_render_in_the_report(self):
        run = make_fleet_run()
        analysis = analyze_run(run, baseline=copy.deepcopy(run))
        text = format_analysis(analysis)
        assert "fleet:chain-net-fleet" in text
        markdown = format_analysis(analysis, markdown=True)
        assert "| fleet:chain-net-fleet |" in markdown


class TestTrajectoryVerdicts:
    def test_drop_below_trailing_window_is_flagged(self):
        history = [make_run(eps) for eps in
                   (1000.0, 1010.0, 990.0, 1005.0, 995.0)]
        current = make_run(600.0)
        analysis = analyze_run(current, trajectory=history + [current])
        entry = analysis["workloads"]["gzip-net"]
        assert entry["trajectory"]["runs"] == 5
        assert entry["trajectory"]["median_events_per_second"] == 1000.0
        assert entry["verdict"] == "regression"
        assert any("below trailing-5 median" in note
                   for note in entry["notes"])

    def test_jitter_within_tolerance_is_not_flagged(self):
        history = [make_run(1000.0) for _ in range(5)]
        # Identical reruns give MAD == 0; a 5% wobble must stay ok.
        analysis = analyze_run(make_run(950.0), trajectory=history)
        assert analysis["workloads"]["gzip-net"]["verdict"] == "ok"

    def test_current_run_excluded_from_its_own_window(self):
        current = make_run(600.0)
        analysis = analyze_run(current, trajectory=[current])
        assert analysis["trajectory_runs"] == 0
        assert "trajectory" not in analysis["workloads"]["gzip-net"]


class TestRealArtifacts:
    def test_committed_bench_run_passes_against_committed_baseline(self):
        from repro.bench import load_baseline

        path = os.path.join(REPO_ROOT, "BENCH_run.json")
        analysis = analyze_path(path, baseline=load_baseline(None))
        assert analysis["verdict"] == "ok"
        assert len(analysis["workloads"]) == 5


class TestFormatting:
    def test_terminal_report(self):
        analysis = analyze_run(make_run(eps=400.0), baseline=make_run())
        text = format_analysis(analysis)
        assert "bench regression analysis: REGRESSION" in text
        assert "gzip-net" in text
        assert "-60.0%" in text

    def test_markdown_report(self):
        analysis = analyze_run(make_run(), baseline=make_run())
        text = format_analysis(analysis, markdown=True)
        assert text.startswith("## Bench regression analysis")
        assert "| workload | events/s | vs baseline | verdict | notes |" in text
        assert "| gzip-net |" in text


class TestCli:
    def test_bench_analyze_reads_recorded_run(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "run.json"
        path.write_text(json.dumps(make_run()))
        # Advisory by design: even a regression exits 0.
        slow = make_run(eps=100.0)
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps([make_run(), slow]))
        assert main(["bench", "--analyze", "--no-baseline",
                     "--out", str(path)]) == 0
        assert main(["bench", "--analyze", "--no-baseline",
                     "--out", str(slow_path)]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_bench_analyze_missing_run_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["bench", "--analyze",
                     "--out", str(tmp_path / "none.json")]) == 2
        assert "record one with" in capsys.readouterr().err

    def test_bench_analyze_real_run_with_committed_baseline(self, capsys):
        from repro.cli import main

        path = os.path.join(REPO_ROOT, "BENCH_run.json")
        assert main(["bench", "--analyze", "--out", path]) == 0
        assert "bench regression analysis: ok" in capsys.readouterr().out
