"""Run manifests: provenance records written next to experiment artifacts."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import SystemConfig
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    build_manifest,
    git_sha,
    load_manifest,
    write_manifest,
)
from repro.experiments.runner import run_grid


class TestManifestBuilding:
    def test_build_manifest_records_invocation(self):
        config = SystemConfig(net_threshold=64)
        manifest = build_manifest(
            selectors=["net", "lei"],
            benchmarks=["gzip"],
            seed=7,
            scale=0.25,
            config=config,
            elapsed_seconds=1.23456,
            command=["python", "-m", "repro.experiments"],
            extra={"workers": 4},
        )
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["selectors"] == ["net", "lei"]
        assert manifest["benchmarks"] == ["gzip"]
        assert manifest["seed"] == 7
        assert manifest["scale"] == 0.25
        assert manifest["config"]["net_threshold"] == 64
        assert manifest["elapsed_seconds"] == 1.235
        assert manifest["command"] == ["python", "-m", "repro.experiments"]
        assert manifest["workers"] == 4
        assert manifest["created_at"]
        assert manifest["python"]

    def test_git_sha_in_this_repo(self):
        sha = git_sha(cwd=os.path.dirname(os.path.dirname(__file__)))
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_sha_outside_a_repo(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) is None

    def test_write_and_load_round_trip(self, tmp_path):
        manifest = build_manifest(
            selectors=["net"], benchmarks=["mcf"], seed=1, scale=0.1,
            config=SystemConfig(),
        )
        directory = str(tmp_path / "out")
        path = write_manifest(directory, manifest)
        assert os.path.basename(path) == MANIFEST_NAME
        # Load by directory and by explicit path.
        assert load_manifest(directory) == manifest
        assert load_manifest(path) == manifest
        # The file is plain JSON, one object.
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == manifest


class TestRunnerWritesManifests:
    def test_run_grid_writes_manifest(self, tmp_path):
        out = str(tmp_path / "grid")
        grid = run_grid(
            scale=0.05, seed=1, benchmarks=["mcf"], selectors=["net"],
            manifest_dir=out,
        )
        assert grid.report("mcf", "net") is not None
        manifest = load_manifest(out)
        assert manifest["benchmarks"] == ["mcf"]
        assert manifest["selectors"] == ["net"]
        assert manifest["cells"] == 1
        assert manifest["elapsed_seconds"] >= 0

    def test_run_grid_without_manifest_dir_writes_nothing(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_grid(scale=0.05, seed=1, benchmarks=["mcf"], selectors=["net"])
        assert not os.path.exists(MANIFEST_NAME)

    def test_experiments_cli_writes_manifest_next_to_markdown(self, tmp_path,
                                                              capsys):
        report = str(tmp_path / "sub" / "report.md")
        experiments_main([
            "--scale", "0.05", "--figure", "fig09", "--markdown", report,
        ])
        out = capsys.readouterr().out
        assert os.path.exists(report)
        assert "manifest written" in out
        manifest = load_manifest(str(tmp_path / "sub"))
        assert manifest["scale"] == 0.05
        assert "mcf" in manifest["benchmarks"]

    def test_experiments_cli_explicit_manifest_dir(self, tmp_path, capsys):
        out_dir = str(tmp_path / "prov")
        experiments_main([
            "--scale", "0.05", "--figure", "fig09", "--manifest", out_dir,
        ])
        capsys.readouterr()
        manifest = load_manifest(out_dir)
        assert manifest["seed"] == 1
        assert manifest["cells"] == len(manifest["benchmarks"]) * len(
            manifest["selectors"]
        )
