"""Shared fixtures: small, fully-understood programs used across tests."""

from __future__ import annotations

import pytest

from repro.behavior.models import Bernoulli, LoopTrip, NeverTaken, Periodic
from repro.program.builder import ProgramBuilder


@pytest.fixture
def straight_line_program():
    """main: A -> B -> C -> halt (pure fall-throughs)."""
    pb = ProgramBuilder("straight")
    main = pb.procedure("main")
    main.block("A", insts=2)
    main.block("B", insts=3)
    main.block("C", insts=1).halt()
    return pb.build()


@pytest.fixture
def simple_loop_program():
    """A single-block self loop executed 100 times, then exit.

    head(4 insts) --taken--> head ... 100 trips, then falls through to
    done, which halts.
    """
    pb = ProgramBuilder("loop")
    main = pb.procedure("main")
    main.block("head", insts=4).cond("head", model=LoopTrip(100))
    main.block("done", insts=1).halt()
    return pb.build()


@pytest.fixture
def nested_loop_program():
    """The paper's Figure 3 shape: outer loop A,(B inner),C.

    * A: outer-loop header (falls through into B).
    * B: inner loop, self back edge taken 9 times per activation.
    * C: outer-loop tail, back edge to A taken per outer trip count.
    """
    pb = ProgramBuilder("nested")
    main = pb.procedure("main")
    main.block("A", insts=3)
    main.block("B", insts=5).cond("B", model=LoopTrip(10))
    main.block("C", insts=2).cond("A", model=LoopTrip(50))
    main.block("done", insts=1).halt()
    return pb.build()


@pytest.fixture
def call_loop_program():
    """Figure 2's shape: a loop whose dominant path calls a function at a
    *lower* address, making the call a backward branch.

    Layout order: helper first (lower addresses), then main.
    main loop: A -> B(call helper) -> back to A.
    helper: E -> F -> return.
    """
    pb = ProgramBuilder("call_loop", entry="main")
    helper = pb.procedure("helper")
    helper.block("E", insts=4)
    helper.block("F", insts=2).ret()
    main = pb.procedure("main")
    main.block("A", insts=3)
    main.block("B", insts=2).call("helper")
    main.block("D", insts=2).cond("A", model=LoopTrip(200))
    main.block("done", insts=1).halt()
    return pb.build()


@pytest.fixture
def diamond_program():
    """Figure 4's shape: unbiased branch then biased branch.

    A: unbiased split (50/50) to B (taken) or C (fall-through);
    both rejoin at D; D: biased split to F (90% taken) or E;
    E and F jump back to A, loop driven by a trip-counted branch in F.
    """
    pb = ProgramBuilder("diamond")
    main = pb.procedure("main")
    main.block("A", insts=2).cond("B", model=Periodic([True, False]))
    main.block("C", insts=3).jump("D")
    main.block("B", insts=3).jump("D")
    main.block("D", insts=2).cond("F", model=Bernoulli(0.9))
    main.block("E", insts=4).jump("A2")
    main.block("F", insts=4)
    main.block("A2", insts=1).cond("A", model=LoopTrip(400))
    main.block("done", insts=1).halt()
    return pb.build()
