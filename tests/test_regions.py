"""Tests for regions, exit stubs, cache sizing and the code cache."""

import pytest

from repro.cache.codecache import CodeCache
from repro.cache.region import CFGRegion, TraceRegion
from repro.cache.sizing import STUB_BYTES, estimate_cache_bytes
from repro.errors import CacheError


def B(program, label):
    return program.block_by_full_label(label)


class TestTraceRegion:
    def test_requires_nonempty_path(self):
        with pytest.raises(CacheError):
            TraceRegion([])

    def test_spans_cycle_when_final_target_is_head(self, call_loop_program):
        p = call_loop_program
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "helper:E"),
                B(p, "helper:F"), B(p, "main:D")]
        cyclic = TraceRegion(path, final_target=path[0])
        straight = TraceRegion(path, final_target=None)
        assert cyclic.spans_cycle
        assert not straight.spans_cycle

    def test_instruction_count_counts_duplicates_per_copy(self, nested_loop_program):
        p = nested_loop_program
        a, b = B(p, "main:A"), B(p, "main:B")
        region = TraceRegion([a, b])
        assert region.instruction_count == a.instruction_count + b.instruction_count

    def test_position_after_advances_along_path(self, call_loop_program):
        p = call_loop_program
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "helper:E")]
        region = TraceRegion(path, final_target=None)
        assert region.position_after(0, False, path[1]) == 1
        assert region.position_after(1, True, path[2]) == 2

    def test_position_after_cycle_back_to_head(self, call_loop_program):
        p = call_loop_program
        path = [B(p, "main:A"), B(p, "main:B")]
        region = TraceRegion(path, final_target=path[0])
        assert region.position_after(1, True, path[0]) == 0

    def test_position_after_divergence_exits(self, call_loop_program):
        p = call_loop_program
        path = [B(p, "main:A"), B(p, "main:B")]
        region = TraceRegion(path, final_target=None)
        assert region.position_after(0, True, B(p, "helper:E")) is None
        assert region.position_after(1, False, B(p, "main:D")) is None
        assert region.position_after(1, True, None) is None

    def test_internal_edges_of_cyclic_trace(self, simple_loop_program):
        head = B(simple_loop_program, "main:head")
        region = TraceRegion([head], final_target=head)
        assert region.internal_edges() == {(head, head)}

    def test_execution_ends_sums_cycles_and_exits(self, simple_loop_program):
        head = B(simple_loop_program, "main:head")
        region = TraceRegion([head], final_target=head)
        region.cycle_backs = 7
        region.exit_count = 3
        assert region.execution_ends == 10


class TestTraceStubs:
    def test_straightline_cond_blocks_one_stub_each(self, diamond_program):
        p = diamond_program
        # A (cond) -> B (jump) -> D (cond) -> F: A needs a stub for its
        # fall-through (C), D for its fall-through (E); B's jump stays
        # inside; F ends the trace with a fall-through stub.
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "main:D"), B(p, "main:F")]
        region = TraceRegion(path, final_target=None)
        assert region.exit_stub_count == 3

    def test_cycle_spanning_trace_saves_final_stub(self, call_loop_program):
        p = call_loop_program
        path = [B(p, "main:A"), B(p, "main:B"), B(p, "helper:E"),
                B(p, "helper:F"), B(p, "main:D")]
        cyclic = TraceRegion(path, final_target=path[0])
        cut = TraceRegion(path, final_target=None)
        # Same blocks, but the cyclic trace's last conditional keeps its
        # taken edge inside the region.
        assert cyclic.exit_stub_count == cut.exit_stub_count - 1

    def test_return_keeps_fallback_stub(self, call_loop_program):
        p = call_loop_program
        # E -> F(ret): the return continues nowhere inside, 1 stub; E is
        # a fall-through block with its successor in-trace, 0 stubs.
        region = TraceRegion([B(p, "helper:E"), B(p, "helper:F")])
        assert region.exit_stub_count == 1

    def test_single_block_cyclic_loop_has_one_stub(self, simple_loop_program):
        head = B(simple_loop_program, "main:head")
        region = TraceRegion([head], final_target=head)
        # Taken edge loops to itself; only the fall-through exit remains.
        assert region.exit_stub_count == 1


class TestCFGRegion:
    def _diamond_region(self, diamond_program):
        p = diamond_program
        blocks = [B(p, "main:A"), B(p, "main:B"), B(p, "main:C"),
                  B(p, "main:D"), B(p, "main:F")]
        edges = [
            (blocks[0], blocks[1]),  # A -> B (taken)
            (blocks[0], blocks[2]),  # A -> C (fall-through)
            (blocks[1], blocks[3]),  # B -> D
            (blocks[2], blocks[3]),  # C -> D
            (blocks[3], blocks[4]),  # D -> F
        ]
        return p, blocks, CFGRegion(blocks[0], blocks, edges)

    def test_entry_must_be_member(self, diamond_program):
        p = diamond_program
        with pytest.raises(CacheError):
            CFGRegion(B(p, "main:A"), [B(p, "main:B")], [])

    def test_instruction_count_no_duplication(self, diamond_program):
        p, blocks, region = self._diamond_region(diamond_program)
        assert region.instruction_count == sum(b.instruction_count for b in blocks)

    def test_stays_internal_on_edges(self, diamond_program):
        p, blocks, region = self._diamond_region(diamond_program)
        a, b, c, d, f = blocks
        assert region.stays_internal(a, True, b)
        assert region.stays_internal(a, False, c)
        assert not region.stays_internal(d, False, B(p, "main:E"))

    def test_direct_exit_to_member_is_rewritten_internal(self, diamond_program):
        p, blocks, region = self._diamond_region(diamond_program)
        a, b, c, d, f = blocks
        # (d, f) was given, but even a direct edge we did NOT pass —
        # none here — would be folded; verify via internal_edges that
        # declared direct targets inside the region are edges.
        assert (d, f) in region.internal_edges()

    def test_spans_cycle_via_edge_to_entry(self, diamond_program):
        p = diamond_program
        a, b, d = B(p, "main:A"), B(p, "main:B"), B(p, "main:D")
        a2 = B(p, "main:A2")
        region = CFGRegion(a, [a, b, d, a2], [(a, b), (b, d), (d, a2), (a2, a)])
        assert region.spans_cycle

    def test_no_cycle_without_entry_edge(self, diamond_program):
        p, blocks, region = self._diamond_region(diamond_program)
        assert not region.spans_cycle

    def test_block_list_is_address_ordered(self, diamond_program):
        p, blocks, region = self._diamond_region(diamond_program)
        addresses = [b.address for b in region.block_list]
        assert addresses == sorted(addresses)

    def test_edges_outside_block_set_dropped(self, diamond_program):
        p = diamond_program
        a, b, e = B(p, "main:A"), B(p, "main:B"), B(p, "main:E")
        region = CFGRegion(a, [a, b], [(a, b), (b, e)])
        assert (b, e) not in region.edges


class TestCFGStubs:
    def test_diamond_region_stub_count(self, diamond_program):
        p = diamond_program
        a, b, c, d, f = (B(p, "main:A"), B(p, "main:B"), B(p, "main:C"),
                         B(p, "main:D"), B(p, "main:F"))
        region = CFGRegion(a, [a, b, c, d, f],
                           [(a, b), (a, c), (b, d), (c, d), (d, f)])
        # Exits: D's fall-through to E, and F's fall-through to A2.
        # A's both sides, B's jump, C's jump and D's taken edge are internal.
        assert region.exit_stub_count == 2

    def test_combined_region_fewer_stubs_than_split_traces(self, diamond_program):
        """Figure 4's point: combining removes duplicated stubs."""
        p = diamond_program
        a, b, c, d, e, f = (B(p, "main:A"), B(p, "main:B"), B(p, "main:C"),
                            B(p, "main:D"), B(p, "main:E"), B(p, "main:F"))
        trace1 = TraceRegion([a, b, d, f])   # taken side
        trace2 = TraceRegion([c, d, f])      # fall-through side, duplicated tail
        combined = CFGRegion(a, [a, b, c, d, f],
                             [(a, b), (a, c), (b, d), (c, d), (d, f)])
        assert combined.exit_stub_count < trace1.exit_stub_count + trace2.exit_stub_count
        assert combined.instruction_count < (trace1.instruction_count
                                             + trace2.instruction_count)


class TestCodeCacheAndSizing:
    def test_insert_and_lookup(self, simple_loop_program):
        head = B(simple_loop_program, "main:head")
        cache = CodeCache()
        region = TraceRegion([head], final_target=head)
        cache.insert(region)
        assert cache.lookup(head) is region
        assert cache.lookup(None) is None
        assert cache.contains_entry(head)

    def test_selection_order_assigned(self, nested_loop_program):
        p = nested_loop_program
        cache = CodeCache()
        r1 = cache.insert(TraceRegion([B(p, "main:B")]))
        r2 = cache.insert(TraceRegion([B(p, "main:C")]))
        assert (r1.selection_order, r2.selection_order) == (0, 1)

    def test_duplicate_entry_rejected(self, simple_loop_program):
        head = B(simple_loop_program, "main:head")
        cache = CodeCache()
        cache.insert(TraceRegion([head]))
        with pytest.raises(CacheError):
            cache.insert(TraceRegion([head]))

    def test_totals(self, nested_loop_program):
        p = nested_loop_program
        cache = CodeCache()
        cache.insert(TraceRegion([B(p, "main:B")]))
        cache.insert(TraceRegion([B(p, "main:C")]))
        assert cache.total_instructions == (B(p, "main:B").instruction_count
                                            + B(p, "main:C").instruction_count)
        assert cache.region_count == 2

    def test_size_estimate_formula(self, simple_loop_program):
        head = B(simple_loop_program, "main:head")
        region = TraceRegion([head], final_target=head)
        expected = head.byte_size + STUB_BYTES * region.exit_stub_count
        assert estimate_cache_bytes([region]) == expected

    def test_size_estimate_custom_stub_bytes(self, simple_loop_program):
        head = B(simple_loop_program, "main:head")
        region = TraceRegion([head], final_target=head)
        small = estimate_cache_bytes([region], stub_bytes=1)
        large = estimate_cache_bytes([region], stub_bytes=100)
        assert large > small
