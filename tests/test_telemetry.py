"""Cross-process telemetry: worker reports, fleet merging, bit-identity."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.experiments.runner import run_grid
from repro.obs.events import make_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    FleetTelemetry,
    TelemetryReport,
    activate_worker_telemetry,
    deactivate_worker_telemetry,
    load_telemetry,
    worker_observer,
)
from repro.obs.observer import NULL_OBSERVER


class TestWorkerProtocol:
    def test_observer_is_null_when_inactive(self):
        assert worker_observer() is NULL_OBSERVER
        assert deactivate_worker_telemetry() is None

    def test_activate_record_deactivate(self):
        bundle = activate_worker_telemetry(ring_capacity=8)
        try:
            obs = worker_observer()
            assert obs is bundle.observer
            obs.count("steps_total", 5)
            obs.emit("region_installed", 3, entry="a", selector="net")
        finally:
            report = deactivate_worker_telemetry()
        assert worker_observer() is NULL_OBSERVER
        assert report.metrics["steps_total"]["values"] == {"": 5}
        assert [e["kind"] for e in report.events] == ["region_installed"]
        assert report.events_dropped == 0

    def test_ring_capacity_limits_shipped_tail(self):
        activate_worker_telemetry(ring_capacity=2)
        obs = worker_observer()
        for step in range(5):
            obs.emit("cache_exit", step)
        report = deactivate_worker_telemetry()
        assert len(report.events) == 2
        assert report.events_dropped == 3


class TestTelemetryReport:
    def test_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(3)
        report = TelemetryReport(
            metrics=registry.snapshot(),
            profile={"phases": {"interpret": {"seconds": 1.0, "entries": 2}},
                     "wall_seconds": 1.5, "steps": 10},
            events=[make_event("run_started", 0, benchmark="b",
                               selector="net", seed=1).to_dict()],
            events_dropped=4,
        )
        clone = TelemetryReport.from_dict(report.to_dict())
        assert clone == report

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(ObservabilityError):
            TelemetryReport.from_dict([1, 2])


class TestFleetTelemetry:
    def make_report(self, steps: int) -> TelemetryReport:
        bundle = activate_worker_telemetry(ring_capacity=16)
        obs = bundle.observer
        obs.count("steps_total", steps)
        obs.emit("region_installed", 1, entry="a", selector="net")
        return deactivate_worker_telemetry()

    def test_absorb_merges_under_job_and_worker_labels(self):
        fleet = FleetTelemetry()
        fleet.absorb(self.make_report(3), job_id="j1", worker="w1")
        fleet.absorb(self.make_report(4).to_dict(), job_id="j2", worker="w2")
        counter = fleet.metrics.get("steps_total")
        assert counter.value(job_id="j1", worker="w1") == 3
        assert counter.value(job_id="j2", worker="w2") == 4
        assert fleet.metric_totals()["steps_total"] == 7
        # Worker events carry their provenance tags after merging.
        tagged = [e for e in fleet.merged_events()
                  if e.kind == "region_installed"]
        assert {e.get("job_id") for e in tagged} == {"j1", "j2"}
        assert {e.get("worker") for e in tagged} == {"w1", "w2"}

    def test_merged_events_interleave_parent_and_workers(self):
        fleet = FleetTelemetry()
        parent = fleet.attach_parent()
        parent.emit("job_submitted", 0, job_id="j1")
        fleet.absorb(self.make_report(1), job_id="j1", worker="w1")
        parent.emit("job_completed", 0, job_id="j1", attempt=1, elapsed=0.1)
        merged = fleet.merged_events()
        keys = [event.order_key for event in merged]
        assert keys == sorted(keys)
        assert {"job_submitted", "job_completed",
                "region_installed"} <= {e.kind for e in merged}

    def test_attach_parent_tees_an_existing_observer(self):
        from repro.obs.sink import CollectingSink
        from repro.obs.observer import Observer

        fleet = FleetTelemetry()
        mine = CollectingSink()
        teed = fleet.attach_parent(Observer(sink=mine))
        teed.emit("job_submitted", 0, job_id="j1")
        assert [e.kind for e in mine.events] == ["job_submitted"]
        assert [e.kind for e in fleet.parent_events] == ["job_submitted"]

    def test_document_round_trip(self, tmp_path):
        fleet = FleetTelemetry()
        fleet.absorb(self.make_report(9), job_id="j1", worker="w1")
        path = str(tmp_path / "telemetry.json")
        fleet.write(path)
        doc = load_telemetry(path)
        assert doc["telemetry_version"] == 1
        assert doc["jobs"] == ["j1"] and doc["workers"] == ["w1"]
        assert doc["metric_totals"]["steps_total"] == 9
        assert doc["events_dropped"] == 0


class TestGridTelemetry:
    GRID = dict(scale=0.1, seed=1, benchmarks=["gzip", "mcf"],
                selectors=["net"], telemetry=True, telemetry_ring=65536)

    def test_parallel_totals_bit_identical_to_serial(self):
        serial = run_grid(workers=1, **self.GRID)
        parallel = run_grid(workers=2, **self.GRID)
        # The simulation results themselves are unchanged...
        for cell, report in serial.reports.items():
            assert parallel.reports[cell] == report
        # ...and no worker telemetry was lost: the merged counter
        # totals match exactly (not approximately), with zero events
        # dropped on either side.
        serial_totals = serial.telemetry.metric_totals()
        assert serial_totals == parallel.telemetry.metric_totals()
        assert serial_totals["steps_total"] > 0
        assert serial.telemetry.events_dropped == 0
        assert parallel.telemetry.events_dropped == 0
        # Every (job, worker) pair reported in.
        assert len(parallel.telemetry.reports) == len(serial.reports)

    def test_disabled_telemetry_attaches_nothing(self):
        grid = run_grid(scale=0.1, seed=1, benchmarks=["gzip"],
                        selectors=["net"], workers=1)
        assert grid.telemetry is None

    def test_telemetry_out_feeds_obs_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "telemetry.json")
        run_grid(scale=0.1, seed=1, benchmarks=["gzip"], selectors=["net"],
                 workers=1, telemetry_out=path, telemetry_ring=65536)
        assert main(["obs", "report", path]) == 0
        out = capsys.readouterr().out
        assert "merged counter totals" in out
        assert "steps_total" in out
        assert "job engine: 1 submitted, 1 completed" in out

    def test_obs_report_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["obs", "report", str(tmp_path / "nope.json")]) == 2
        assert "no telemetry document" in capsys.readouterr().err
