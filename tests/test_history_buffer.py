"""Tests for LEI's branch history buffer."""

import pytest

from repro.errors import SelectionError
from repro.program.builder import ProgramBuilder
from repro.selection.history import BranchHistoryBuffer


@pytest.fixture
def blocks():
    """Ten distinct blocks to use as branch sources/targets."""
    pb = ProgramBuilder("buffered")
    main = pb.procedure("main")
    for i in range(10):
        main.block(f"b{i}", insts=1)
    main.block("end", insts=1).halt()
    program = pb.build()
    return [program.block_by_full_label(f"main:b{i}") for i in range(10)]


class TestInsertAndLookup:
    def test_lookup_finds_most_recent_occurrence(self, blocks):
        buf = BranchHistoryBuffer(8)
        first = buf.insert(blocks[0], blocks[1])
        buf.hash_update(blocks[1], first.seq)
        second = buf.insert(blocks[2], blocks[1])
        # The hash is updated by the caller (Figure 5 line 8): until
        # then lookup still returns the first occurrence.
        assert buf.hash_lookup(blocks[1]).seq == first.seq
        buf.hash_update(blocks[1], second.seq)
        assert buf.hash_lookup(blocks[1]).seq == second.seq

    def test_lookup_miss(self, blocks):
        buf = BranchHistoryBuffer(8)
        assert buf.hash_lookup(blocks[3]) is None

    def test_follows_exit_flag_preserved(self, blocks):
        buf = BranchHistoryBuffer(8)
        entry = buf.insert(blocks[0], blocks[1], follows_exit=True)
        buf.hash_update(blocks[1], entry.seq)
        assert buf.hash_lookup(blocks[1]).follows_exit

    def test_capacity_must_be_sane(self):
        with pytest.raises(SelectionError):
            BranchHistoryBuffer(1)


class TestEviction:
    def test_old_entries_evicted_at_capacity(self, blocks):
        buf = BranchHistoryBuffer(3)
        first = buf.insert(blocks[0], blocks[1])
        buf.hash_update(blocks[1], first.seq)
        for i in range(3):  # fills and wraps, evicting the first entry
            buf.insert(blocks[2], blocks[3 + i])
        assert buf.hash_lookup(blocks[1]) is None

    def test_live_entries_bounded_by_capacity(self, blocks):
        buf = BranchHistoryBuffer(4)
        for i in range(10):
            buf.insert(blocks[i % 5], blocks[(i + 1) % 5])
        assert buf.live_entries == 4


class TestEntriesAfterAndTruncate:
    def test_entries_after_returns_cycle_branches_in_order(self, blocks):
        buf = BranchHistoryBuffer(8)
        old = buf.insert(blocks[0], blocks[1])
        e1 = buf.insert(blocks[1], blocks[2])
        e2 = buf.insert(blocks[2], blocks[1])
        seqs = [e.seq for e in buf.entries_after(old.seq)]
        assert seqs == [e1.seq, e2.seq]

    def test_entries_after_respects_eviction_floor(self, blocks):
        buf = BranchHistoryBuffer(3)
        old = buf.insert(blocks[0], blocks[1])
        for i in range(4):
            buf.insert(blocks[2], blocks[3 + i])
        # `old` has been evicted; iteration silently starts at the floor.
        entries = list(buf.entries_after(old.seq))
        assert len(entries) == 3

    def test_truncate_removes_newer_entries(self, blocks):
        buf = BranchHistoryBuffer(8)
        keep = buf.insert(blocks[0], blocks[1])
        buf.hash_update(blocks[1], keep.seq)
        drop = buf.insert(blocks[1], blocks[2])
        buf.hash_update(blocks[2], drop.seq)
        buf.truncate_after(keep.seq)
        assert buf.hash_lookup(blocks[2]) is None
        assert buf.hash_lookup(blocks[1]).seq == keep.seq
        assert list(buf.entries_after(keep.seq)) == []

    def test_target_hash_never_outgrows_capacity(self, blocks):
        # Ring wrap over ten distinct targets: without hash eviction on
        # overwrite, the hash grows with distinct-targets-ever-seen and
        # leaks past the ring's capacity.
        buf = BranchHistoryBuffer(4)
        for i in range(40):
            buf.record(blocks[i % 10], blocks[(i + 1) % 10])
            assert len(buf._target_hash) <= buf.capacity

    def test_truncate_evicts_hash_pointers(self, blocks):
        buf = BranchHistoryBuffer(8)
        _, kept = buf.record(blocks[0], blocks[1])
        for i in range(2, 7):
            buf.record(blocks[i - 1], blocks[i])
        buf.truncate_after(kept.seq)
        # Only the surviving entry's target may remain hashed; the
        # truncated occurrences must not linger as dead pointers.
        assert len(buf._target_hash) == 1
        assert buf.hash_lookup(blocks[1]) is kept

    def test_record_returns_previous_occurrence_then_updates(self, blocks):
        buf = BranchHistoryBuffer(8)
        old, first = buf.record(blocks[0], blocks[1])
        assert old is None
        old, second = buf.record(blocks[2], blocks[1])
        # The cycle test must see the occurrence *before* this insert.
        assert old is first
        assert buf.hash_lookup(blocks[1]) is second

    def test_truncate_then_reinsert_no_ghost_hits(self, blocks):
        buf = BranchHistoryBuffer(8)
        base = buf.insert(blocks[0], blocks[1])
        stale = buf.insert(blocks[1], blocks[2])
        buf.hash_update(blocks[2], stale.seq)
        buf.truncate_after(base.seq)
        # Reuse the truncated sequence number for a different target.
        fresh = buf.insert(blocks[3], blocks[4])
        assert fresh.seq == stale.seq
        # The stale hash entry must not resolve to the new occupant.
        assert buf.hash_lookup(blocks[2]) is None

    def test_truncate_noop_when_nothing_newer(self, blocks):
        buf = BranchHistoryBuffer(8)
        entry = buf.insert(blocks[0], blocks[1])
        buf.truncate_after(entry.seq)  # must not raise
        assert buf.live_entries == 1

    def test_latest_seq_requires_nonempty(self, blocks):
        buf = BranchHistoryBuffer(4)
        with pytest.raises(SelectionError):
            buf.latest_seq()
        entry = buf.insert(blocks[0], blocks[1])
        assert buf.latest_seq() == entry.seq
