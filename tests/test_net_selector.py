"""Behavioural tests for NET, including the paper's worked examples."""

import pytest

from repro.cache.region import TraceRegion
from repro.config import SystemConfig
from repro.system.simulator import simulate


def region_labels(region):
    return [block.label for block in region.block_list]


@pytest.fixture
def fast_config():
    """Paper semantics at a test-friendly threshold."""
    return SystemConfig(net_threshold=5, lei_threshold=4)


class TestStartConditions:
    def test_backward_branch_target_selected(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        assert result.region_count == 1
        region = result.regions[0]
        assert region.entry.label == "head"
        assert region.spans_cycle

    def test_forward_targets_do_not_start_regions(self, straight_line_program, fast_config):
        # No backward branches, no cache exits: nothing is ever selected.
        result = simulate(straight_line_program, "net", fast_config)
        assert result.region_count == 0
        assert result.hit_rate == 0.0

    def test_threshold_respected(self, simple_loop_program):
        # 100 loop iterations: a threshold of 101 is never reached.
        result = simulate(
            simple_loop_program, "net", SystemConfig(net_threshold=101)
        )
        assert result.region_count == 0

    def test_exit_targets_become_candidates(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        entries = {region.entry.label for region in result.regions}
        # C is reachable as a region entry only via the exit from B's
        # inner-loop trace (B->C is a fall-through, never a taken branch).
        assert "C" in entries


class TestFigure2InterproceduralCycle:
    """Figure 2: a loop calling a lower-address function needs two NET
    traces, neither of which spans the cycle."""

    def test_net_selects_two_traces_spanning_nothing(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "net", fast_config)
        assert result.region_count == 2
        assert all(isinstance(r, TraceRegion) for r in result.regions)
        assert not any(region.spans_cycle for region in result.regions)

    def test_net_traces_split_at_the_backward_call(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "net", fast_config)
        by_entry = {region.entry.label: region for region in result.regions}
        # The helper trace stops at the backward branch D->A.
        assert region_labels(by_entry["E"]) == ["E", "F", "D"]
        # The loop-header trace stops at the backward call B->E.
        assert region_labels(by_entry["A"]) == ["A", "B"]

    def test_net_steady_state_bounces_between_traces(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "net", fast_config)
        # Every steady-state iteration takes two region transitions
        # (trace1 -> trace2 -> trace1): separation in action.
        assert result.region_transitions > 300


class TestFigure3NestedLoops:
    """Figure 3: NET duplicates the inner loop head in the outer trace."""

    def test_net_selects_three_traces_with_duplication(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        by_entry = {region.entry.label: region_labels(region) for region in result.regions}
        assert by_entry["B"] == ["B"]
        # The outer-loop trace for A re-copies the inner loop block B.
        assert by_entry["A"] == ["A", "B"]
        assert by_entry["C"] == ["C"]

    def test_inner_loop_trace_spans_its_cycle(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        inner = next(r for r in result.regions if r.entry.label == "B")
        assert inner.spans_cycle
        assert inner.cycle_backs > 0


class TestTraceShape:
    def test_trace_extends_through_forward_call_and_return(self, fast_config):
        # A loop calling a *higher*-address function: NET can follow the
        # forward call but must stop at the backward return.
        from repro.behavior.models import LoopTrip
        from repro.program.builder import ProgramBuilder

        pb = ProgramBuilder("fwd_call", entry="main")
        main = pb.procedure("main")
        main.block("A", insts=3)
        main.block("B", insts=2).call("helper")
        main.block("D", insts=2).cond("A", model=LoopTrip(100))
        main.block("done", insts=1).halt()
        helper = pb.procedure("helper")
        helper.block("E", insts=4)
        helper.block("F", insts=2).ret()
        program = pb.build()

        result = simulate(program, "net", fast_config)
        by_entry = {r.entry.label: region_labels(r) for r in result.regions}
        # Trace from A crosses the forward call into E and F, then the
        # return (backward, F -> D) ends it.
        assert by_entry["A"] == ["A", "B", "E", "F"]

    def test_size_limit_cuts_trace(self, fast_config):
        from repro.behavior.models import LoopTrip
        from repro.program.builder import ProgramBuilder

        pb = ProgramBuilder("long_chain")
        main = pb.procedure("main")
        main.block("head", insts=1)
        for i in range(30):
            main.block(f"c{i}", insts=1)
        main.block("tail", insts=1).cond("head", model=LoopTrip(100))
        main.block("done", insts=1).halt()
        program = pb.build()

        config = SystemConfig(net_threshold=5, max_trace_blocks=8)
        result = simulate(program, "net", config)
        head_trace = next(r for r in result.regions if r.entry.label == "head")
        assert len(head_trace.path) == 8
        assert not head_trace.spans_cycle

    def test_trace_stops_at_existing_region_entry(self, nested_loop_program, fast_config):
        result = simulate(nested_loop_program, "net", fast_config)
        outer = next(r for r in result.regions if r.entry.label == "A")
        # The A-trace ends *with* the copy of B because B's backward
        # self-branch ends it (B starts an existing region AND branches
        # backward; either rule cuts here).
        assert region_labels(outer)[-1] == "B"


class TestNETDiagnostics:
    def test_counters_recycled_after_selection(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        assert result.peak_counters == 1
        assert result.selector_diagnostics["traces_installed"] == 1

    def test_no_observed_trace_memory_for_plain_net(self, simple_loop_program, fast_config):
        result = simulate(simple_loop_program, "net", fast_config)
        assert result.peak_observed_trace_bytes == 0
