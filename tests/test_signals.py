"""Windowed phase signals (repro.obs.signals)."""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import ObservabilityError
from repro.execution.engine import ExecutionEngine
from repro.metrics.summary import MetricReport
from repro.obs import CollectingSink, Observer
from repro.obs.signals import SignalConfig, SignalTracker
from repro.system.simulator import Simulator, simulate
from repro.workloads import build_benchmark


def run_with_signals(bench="gzip", selector="net", scale=0.1, seed=1,
                     config=None, signals=None, observer=None):
    program = build_benchmark(bench, scale=scale)
    simulator = Simulator(program, selector, config, observer=observer,
                          signals=signals)
    result = simulator.run_program(ExecutionEngine(program, seed=seed))
    return result, simulator.signal_tracker


class TestSignalConfig:
    def test_window_validated(self):
        with pytest.raises(ObservabilityError):
            SignalTracker(SignalConfig(window=0), stats=None, cache=None)


class TestWindows:
    def test_windows_partition_the_run(self):
        result, tracker = run_with_signals(
            signals=SignalConfig(window=2000))
        windows = tracker.windows
        assert windows, "a multi-thousand-step run must close windows"
        assert windows[0].start_step == 0
        for before, after in zip(windows, windows[1:]):
            assert after.start_step == before.end_step
        # The trailing partial window covers the end of the run.
        total_steps = result.stats.interp_steps + result.stats.cache_steps
        assert windows[-1].end_step == total_steps
        for window in windows:
            assert 0.0 <= window.hit_rate <= 1.0
            assert window.churn >= 0 and window.evictions >= 0

    def test_warmup_raises_hit_rate_across_windows(self):
        _, tracker = run_with_signals(signals=SignalConfig(window=2000))
        first, last = tracker.windows[0], tracker.windows[-1]
        assert last.hit_rate > first.hit_rate

    def test_timeline_matches_windows(self):
        _, tracker = run_with_signals(signals=SignalConfig(window=2000))
        timeline = tracker.timeline()
        assert len(timeline) == len(tracker.windows)
        assert timeline[0] == tracker.windows[0].to_dict()


class TestPhaseShifts:
    def test_warmup_shift_detected_and_emitted(self):
        sink = CollectingSink()
        _, tracker = run_with_signals(
            signals=SignalConfig(window=2000, hit_rate_delta=0.05,
                                 churn_delta=None, eviction_delta=None),
            observer=Observer(sink=sink),
        )
        assert tracker.shifts, "warmup must move the hit rate"
        assert all(signal == "hit_rate" for _, signal, _ in tracker.shifts)
        emitted = sink.by_kind("phase_shift")
        assert len(emitted) == len(tracker.shifts)
        event = emitted[0]
        assert event.get("signal") == "hit_rate"
        assert event.get("window") == 2000
        assert event.get("delta") == pytest.approx(
            tracker.shifts[0][2], abs=1e-6)

    def test_disabled_thresholds_fire_nothing(self):
        _, tracker = run_with_signals(
            signals=SignalConfig(window=2000, hit_rate_delta=None,
                                 churn_delta=None, eviction_delta=None))
        assert tracker.shifts == []

    def test_synthetic_dip_triggers_both_directions(self):
        class Stats:
            interp_steps = 0
            cache_steps = 0
            interp_instructions = 0
            cache_instructions = 0

        class Cache:
            regions = {}
            evictions = 0
            flushes = 0

        stats, cache = Stats(), Cache()
        tracker = SignalTracker(
            SignalConfig(window=10, hit_rate_delta=0.3, churn_delta=None,
                         eviction_delta=None),
            stats, cache)
        # Window 1: all cached.  Window 2: all interpreted (the dip).
        stats.cache_steps = 10
        stats.cache_instructions = 100
        tracker.on_step(10)
        stats.interp_steps = 10
        stats.interp_instructions = 100
        tracker.on_step(20)
        # Window 3: recovered.
        stats.cache_steps = 20
        stats.cache_instructions = 200
        tracker.on_finish(30)
        assert [w.hit_rate for w in tracker.windows] == [1.0, 0.0, 1.0]
        assert [(step, delta) for step, _, delta in tracker.shifts] == [
            (20, -1.0), (30, 1.0)]


class TestOutcomeIdentity:
    def test_signals_do_not_change_simulation_results(self):
        program = build_benchmark("gzip", scale=0.1)
        config = SystemConfig(cache_capacity_bytes=4096,
                              cache_eviction_policy="fifo")
        plain = simulate(program, "net", config, seed=1)
        tracked = simulate(program, "net", config, seed=1,
                           signals=SignalConfig(window=1000))
        assert (MetricReport.from_result(tracked)
                == MetricReport.from_result(plain))
        assert tracked.cache_evictions == plain.cache_evictions
