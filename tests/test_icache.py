"""Tests for the instruction-cache model and its simulator integration."""

import pytest

from repro.cache.icache import InstructionCache
from repro.config import SystemConfig
from repro.errors import CacheError
from repro.system.simulator import simulate
from repro.workloads import build_micro


class TestGeometry:
    def test_default_geometry(self):
        icache = InstructionCache()
        assert icache.set_count == 32 * 1024 // 64 // 2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(CacheError):
            InstructionCache(size_bytes=32, line_bytes=64)
        with pytest.raises(CacheError):
            InstructionCache(associativity=0)
        with pytest.raises(CacheError):
            InstructionCache(size_bytes=192, line_bytes=64, associativity=2)


class TestTouchSemantics:
    def test_first_touch_misses_then_hits(self):
        icache = InstructionCache(size_bytes=256, line_bytes=64, associativity=2)
        assert icache.touch(0, 64) == 1
        assert icache.touch(0, 64) == 0
        assert icache.miss_rate == 0.5

    def test_range_spanning_lines(self):
        icache = InstructionCache(size_bytes=512, line_bytes=64, associativity=2)
        # 100 bytes starting at 60 touches lines 0 and 1 and 2 (60..159).
        assert icache.touch(60, 100) == 3

    def test_zero_length_touch_is_free(self):
        icache = InstructionCache()
        assert icache.touch(0, 0) == 0
        assert icache.accesses == 0

    def test_lru_within_set(self):
        # 2 sets, 2 ways, 64B lines: lines 0,2,4 map to set 0.
        icache = InstructionCache(size_bytes=256, line_bytes=64, associativity=2)
        icache.touch(0 * 64, 1)      # line 0: miss
        icache.touch(2 * 64, 1)      # line 2: miss (set 0 now [2, 0])
        icache.touch(0 * 64, 1)      # hit, MRU -> [0, 2]
        icache.touch(4 * 64, 1)      # miss, evicts line 2
        assert icache.touch(0 * 64, 1) == 0   # still resident
        assert icache.touch(2 * 64, 1) == 1   # was evicted

    def test_conflict_misses_with_direct_mapped(self):
        direct = InstructionCache(size_bytes=128, line_bytes=64, associativity=1)
        direct.touch(0, 1)
        direct.touch(128, 1)  # same set as 0 under 2 sets
        assert direct.touch(0, 1) == 1  # conflict-evicted

    def test_reset_statistics(self):
        icache = InstructionCache()
        icache.touch(0, 64)
        icache.reset_statistics()
        assert icache.accesses == 0 and icache.misses == 0


class TestSimulatorIntegration:
    def test_run_without_icache_records_none(self):
        program = build_micro("self_loop", iterations=200)
        result = simulate(program, "net", SystemConfig())
        assert result.icache is None

    def test_hot_loop_has_tiny_miss_rate(self):
        program = build_micro("self_loop", iterations=2000)
        icache = InstructionCache()
        result = simulate(program, "net", SystemConfig(), icache=icache)
        assert result.icache is icache
        assert icache.accesses > 0
        # One small region fetched repeatedly: everything after the
        # compulsory misses hits.
        assert icache.miss_rate < 0.01

    def test_tiny_icache_thrashes_on_separated_traces(self):
        """Two traces far apart in the code cache conflict in a tiny
        direct-mapped I-cache when control bounces between them."""
        program = build_micro("figure2", iterations=3000)
        tiny = InstructionCache(size_bytes=64, line_bytes=32, associativity=1)
        net = simulate(program, "net", SystemConfig(), icache=tiny)
        assert net.icache.miss_rate > 0.1

    def test_lei_fetches_fewer_lines_than_net_on_figure2(self):
        program = build_micro("figure2", iterations=3000)
        net_icache = InstructionCache(size_bytes=128, line_bytes=32,
                                      associativity=1)
        lei_icache = InstructionCache(size_bytes=128, line_bytes=32,
                                      associativity=1)
        simulate(program, "net", SystemConfig(), icache=net_icache)
        simulate(program, "lei", SystemConfig(), icache=lei_icache)
        # The single LEI trace streams through a contiguous range; NET's
        # bouncing pair of traces conflicts in the tiny cache.
        assert lei_icache.miss_rate < net_icache.miss_rate
