"""Tests for the deterministic SplitMix64 generator."""

import pytest

from repro.behavior.rng import SplitMix64


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SplitMix64(1234)
        b = SplitMix64(1234)
        assert [a.next_u64() for _ in range(100)] == [b.next_u64() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(8)] != [b.next_u64() for _ in range(8)]

    def test_known_value(self):
        # SplitMix64 reference vector for seed 0 (first output).
        assert SplitMix64(0).next_u64() == 0xE220A8397B1DCDAF


class TestDistributions:
    def test_random_in_unit_interval(self):
        rng = SplitMix64(7)
        for _ in range(1000):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_randint_bounds_inclusive(self):
        rng = SplitMix64(9)
        values = {rng.randint(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            SplitMix64(0).randint(5, 4)

    def test_bernoulli_rate_roughly_matches(self):
        rng = SplitMix64(11)
        hits = sum(rng.bernoulli(0.3) for _ in range(20000))
        assert 0.27 < hits / 20000 < 0.33

    def test_weighted_index_respects_weights(self):
        rng = SplitMix64(13)
        cumulative = [1.0, 1.0, 2.0]  # index 1 has zero weight
        counts = [0, 0, 0]
        for _ in range(5000):
            counts[rng.weighted_index(cumulative)] += 1
        assert counts[1] == 0
        assert abs(counts[0] - counts[2]) < 500

    def test_fork_produces_independent_stream(self):
        rng = SplitMix64(21)
        child = rng.fork()
        assert child.next_u64() != rng.next_u64()
