"""Property tests for the batched fleet (hypothesis).

The fleet contract says results depend only on each cell's coordinate,
never on which lanes share a batch: *any* partition of a grid into
fleets — any grouping, any order within a group — must produce
per-cell reports identical to the serial oracle.  Hypothesis explores
the partition space; the oracle is computed once per session.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchCell, available_backends, run_fleet
from repro.batch import kernel as kernel_mod
from repro.metrics.summary import MetricReport
from repro.system.simulator import simulate
from repro.batch.fleet import build_fleet_program

BACKENDS = available_backends()

#: A small, heterogeneous grid: three motifs with different region
#: shapes (loop nest, self loop, trace chain) across two selectors.
CELLS = tuple(
    BatchCell(f"micro:{motif}", selector, scale=0.2, seed=seed)
    for motif in ("figure3", "self_loop", "linked_chain")
    for selector in ("net", "lei")
    for seed in (1,)
)


@pytest.fixture(scope="module")
def oracle():
    reports = {}
    for cell in CELLS:
        program = build_fleet_program(cell.benchmark, cell.scale)
        reports[cell] = MetricReport.from_result(
            simulate(program, cell.selector, seed=cell.seed)
        )
    return reports


@settings(max_examples=12, deadline=None)
@given(
    groups=st.lists(st.integers(min_value=0, max_value=2),
                    min_size=len(CELLS), max_size=len(CELLS)),
    order=st.permutations(range(len(CELLS))),
    max_lanes=st.one_of(st.none(),
                        st.integers(min_value=1, max_value=len(CELLS))),
)
def test_any_partition_matches_serial(oracle, groups, order, max_lanes):
    """Shuffle the grid, split it into up to three fleets, run each.

    ``max_lanes`` additionally varies the admission schedule: a fleet
    may run full-width (``None``) or stream its cells through as few as
    one live slot — the reports must not move either way.
    """
    batches = {}
    for position, cell_index in enumerate(order):
        batches.setdefault(groups[position], []).append(CELLS[cell_index])
    merged = {}
    for batch in batches.values():
        fleet = run_fleet(batch, max_lanes=max_lanes)
        merged.update(fleet.reports)
    assert merged == oracle


#: Mixed-mode pool: trace-resident chains (`net` installs traces), CFG
#: region cells (the combined selectors install multi-path regions),
#: and interp-heavy cells (tiny scales finish before regions dominate).
#: Any subset in any lane order must land every execution mode the
#: kernel distinguishes next to every other one.
MIXED_POOL = tuple(
    BatchCell(f"micro:{motif}", selector, scale=scale, seed=seed)
    for motif, selector, scale, seed in (
        ("linked_chain", "net", 0.2, 1),
        ("linked_chain", "net", 0.2, 2),
        ("figure3", "combined-net", 0.2, 1),
        ("figure4", "combined-lei", 0.2, 1),
        ("self_loop", "combined-net", 0.2, 1),
        ("alternating", "lei", 0.05, 1),
        ("recursion", "net", 0.1, 1),
        ("figure2", "net", 0.05, 1),
    )
)


@pytest.fixture(scope="module")
def mixed_oracle():
    reports = {}
    for cell in MIXED_POOL:
        program = build_fleet_program(cell.benchmark, cell.scale)
        reports[cell] = MetricReport.from_result(
            simulate(program, cell.selector, seed=cell.seed)
        )
    return reports


@settings(max_examples=10, deadline=None)
@given(
    order=st.permutations(range(len(MIXED_POOL))),
    size=st.integers(min_value=2, max_value=len(MIXED_POOL)),
    compaction=st.booleans(),
    backend=st.sampled_from(BACKENDS),
    cutover=st.sampled_from((0, kernel_mod.SCALAR_CUTOVER)),
    max_lanes=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
)
def test_mixed_mode_interleavings_match_serial(mixed_oracle, order, size,
                                               compaction, backend, cutover,
                                               max_lanes):
    """Any interleaving of CFG, interp and trace lanes, with compaction
    on or off, the vector path forced or cut over, and any streaming
    admission schedule, is bit-identical to the serial oracle on every
    available backend."""
    cells = [MIXED_POOL[i] for i in order[:size]]
    old = kernel_mod.SCALAR_CUTOVER
    kernel_mod.SCALAR_CUTOVER = cutover
    try:
        fleet = run_fleet(cells, backend=backend, compaction=compaction,
                          max_lanes=max_lanes)
    finally:
        kernel_mod.SCALAR_CUTOVER = old
    for cell in cells:
        assert fleet.reports[cell] == mixed_oracle[cell]


@settings(max_examples=8, deadline=None)
@given(max_steps=st.integers(min_value=1, max_value=400))
def test_step_budget_is_partition_independent(oracle, max_steps):
    """Truncated fleets agree with truncated serial runs, per cell."""
    fleet = run_fleet(CELLS, max_steps=max_steps)
    for cell in CELLS:
        program = build_fleet_program(cell.benchmark, cell.scale)
        expected = MetricReport.from_result(
            simulate(program, cell.selector, seed=cell.seed,
                     max_steps=max_steps)
        )
        assert fleet.reports[cell] == expected
