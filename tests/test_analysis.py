"""Tests for the post-run analysis package."""

import json

import pytest

from repro.analysis import (
    cache_summary,
    compare_runs,
    figure_to_dict,
    region_inventory,
    report_from_dict,
    report_to_dict,
    warmup_step,
    window_rates,
)
from repro.analysis.timeline import coldest_window
from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.metrics.summary import MetricReport
from repro.system.results import TimelineSample
from repro.system.simulator import simulate


@pytest.fixture
def fast_config():
    return SystemConfig(net_threshold=5, lei_threshold=4)


@pytest.fixture
def sampled_run(call_loop_program, fast_config):
    return simulate(call_loop_program, "lei", fast_config, sample_every=100)


class TestTimeline:
    def test_samples_recorded(self, sampled_run):
        assert len(sampled_run.samples) >= 3
        steps = [s.step for s in sampled_run.samples]
        assert steps == sorted(steps)
        final = sampled_run.samples[-1]
        assert final.total_instructions == sampled_run.total_instructions_executed

    def test_no_samples_without_request(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "lei", fast_config)
        assert result.samples == []

    @pytest.mark.parametrize("fast", [True, False])
    def test_no_duplicate_sample_on_exact_boundary(
        self, straight_line_program, fast
    ):
        # The straight-line program runs exactly 3 steps; with
        # ``sample_every=3`` the periodic hook samples at step 3, and
        # the end-of-run sample would land on the very same step — it
        # must be skipped, not duplicated.
        result = simulate(straight_line_program, "net", sample_every=3,
                          fast=fast)
        steps = [s.step for s in result.samples]
        assert steps == [3]

    def test_window_rates_derive_deltas(self, sampled_run):
        rates = window_rates(sampled_run.samples)
        assert rates
        for rate in rates:
            assert 0.0 <= rate.hit_rate <= 1.0
            assert rate.end_step > rate.start_step
            assert rate.instructions > 0

    def test_warmup_detected_for_hot_loop(self, sampled_run):
        # LEI selects at threshold 4; the loop runs 200 iterations, so
        # warm-up completes early in the run.
        step = warmup_step(sampled_run.samples, threshold=0.9)
        assert step is not None
        assert step < sampled_run.samples[-1].step

    def test_warmup_none_when_never_hot(self):
        samples = [
            TimelineSample(100, 100, 0, 0, 0),
            TimelineSample(200, 200, 10, 1, 0),
        ]
        assert warmup_step(samples, threshold=0.9) is None

    def test_warmup_requires_suffix_to_be_hot(self):
        samples = [
            TimelineSample(100, 10, 0, 0, 0),
            TimelineSample(200, 10, 100, 1, 0),   # hot window
            TimelineSample(300, 110, 100, 1, 0),  # cold again
            TimelineSample(400, 110, 200, 1, 0),  # hot until the end
        ]
        # The suffix starting at the second window is dragged cold by
        # the dip; only from step 300 is the rest of the run hot.
        assert warmup_step(samples, threshold=0.9) == 300

    def test_warmup_threshold_validated(self, sampled_run):
        with pytest.raises(ConfigError):
            warmup_step(sampled_run.samples, threshold=0.0)

    def test_coldest_window_skips_warmup(self):
        samples = [
            TimelineSample(100, 100, 0, 0, 0),     # pure warm-up
            TimelineSample(200, 100, 100, 1, 0),   # hot
            TimelineSample(300, 150, 150, 1, 0),   # phase dip (0.5)
            TimelineSample(400, 150, 250, 1, 0),   # hot again
        ]
        coldest = coldest_window(samples)
        assert coldest is not None
        assert coldest.start_step == 200
        assert coldest.hit_rate == 0.5

    def test_coldest_window_empty(self):
        assert coldest_window([]) is None

    def test_first_hot_window(self):
        from repro.analysis import first_hot_window

        samples = [
            TimelineSample(100, 100, 0, 0, 0),
            TimelineSample(200, 110, 90, 1, 0),    # 0.9 window
            TimelineSample(300, 111, 189, 1, 0),   # 0.99 window
        ]
        assert first_hot_window(samples, threshold=0.95) == 300
        assert first_hot_window(samples, threshold=0.85) == 200
        assert first_hot_window(samples, threshold=1.0) is None
        with pytest.raises(ConfigError):
            first_hot_window(samples, threshold=1.5)


class TestCompare:
    def test_lei_vs_net_ratios(self, call_loop_program, fast_config):
        lei = simulate(call_loop_program, "lei", fast_config)
        net = simulate(call_loop_program, "net", fast_config)
        comparison = compare_runs(lei, net)
        assert comparison.subject == "lei"
        assert comparison.baseline == "net"
        assert comparison.ratio("region_count") < 1.0
        assert comparison.ratio("exit_stubs") < 1.0
        # Both selectors cache the same five hot blocks here.
        assert comparison.shared_blocks == 5
        lines = comparison.summary_lines()
        assert any("region_transitions" in line for line in lines)

    def test_different_programs_rejected(self, call_loop_program,
                                         simple_loop_program, fast_config):
        a = simulate(call_loop_program, "net", fast_config)
        b = simulate(simple_loop_program, "net", fast_config)
        with pytest.raises(ConfigError, match="different programs"):
            compare_runs(a, b)

    def test_unknown_metric_rejected(self, call_loop_program, fast_config):
        lei = simulate(call_loop_program, "lei", fast_config)
        net = simulate(call_loop_program, "net", fast_config)
        with pytest.raises(ConfigError, match="unknown metric"):
            compare_runs(lei, net).ratio("speedup")


class TestInventory:
    def test_inventory_lists_regions_hottest_first(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "net", fast_config)
        text = region_inventory(result)
        assert f"{result.region_count} regions" in text
        executed_columns = [
            int(line.split()[6]) for line in text.splitlines()[2:]
        ]
        assert executed_columns == sorted(executed_columns, reverse=True)

    def test_inventory_limit(self, call_loop_program, fast_config):
        result = simulate(call_loop_program, "net", fast_config)
        text = region_inventory(result, limit=1)
        assert len(text.splitlines()) == 3  # header x2 + one region

    def test_cache_summary_mentions_bounded_stats(self):
        from repro.workloads import build_benchmark

        program = build_benchmark("eon", scale=0.2)
        config = SystemConfig(cache_capacity_bytes=500,
                              cache_eviction_policy="fifo")
        result = simulate(program, "net", config)
        summary = cache_summary(result)
        assert "evictions" in summary
        assert "hit rate" in summary


class TestSerialization:
    def test_report_round_trip(self, call_loop_program, fast_config):
        report = MetricReport.from_result(
            simulate(call_loop_program, "lei", fast_config)
        )
        data = report_to_dict(report)
        json.dumps(data)  # must be JSON-compatible
        assert report_from_dict(data) == report

    def test_wrong_schema_rejected(self, call_loop_program, fast_config):
        report = MetricReport.from_result(
            simulate(call_loop_program, "lei", fast_config)
        )
        data = report_to_dict(report)
        data["schema_version"] = 99
        with pytest.raises(ConfigError, match="schema version"):
            report_from_dict(data)

    def test_unknown_and_missing_fields_rejected(self, call_loop_program, fast_config):
        report = MetricReport.from_result(
            simulate(call_loop_program, "lei", fast_config)
        )
        data = report_to_dict(report)
        data["bogus"] = 1
        with pytest.raises(ConfigError, match="unknown"):
            report_from_dict(data)
        data = report_to_dict(report)
        del data["hit_rate"]
        with pytest.raises(ConfigError, match="missing"):
            report_from_dict(data)

    def test_figure_to_dict(self, call_loop_program, fast_config):
        from repro.experiments.figures import compute_figure
        from repro.experiments.runner import run_grid

        grid = run_grid(scale=0.05, benchmarks=("gzip",))
        figure = compute_figure("fig09", grid)
        data = figure_to_dict(figure)
        json.dumps(data)
        assert data["figure_id"] == "fig09"
        assert data["rows"][0]["benchmark"] == "gzip"

    def test_grid_round_trip_through_file(self, tmp_path):
        from repro.analysis import load_grid, save_grid
        from repro.experiments.figures import compute_figure
        from repro.experiments.runner import run_grid

        grid = run_grid(scale=0.05, benchmarks=("gzip", "mcf"))
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        loaded = load_grid(path)
        assert loaded.reports == grid.reports
        assert loaded.scale == grid.scale
        assert loaded.config == grid.config
        # Figures computed from the loaded grid are identical.
        original = compute_figure("fig09", grid)
        reloaded = compute_figure("fig09", loaded)
        assert original.rows == reloaded.rows

    def test_grid_bad_schema_rejected(self, tmp_path):
        from repro.analysis import grid_from_dict

        with pytest.raises(ConfigError, match="schema"):
            grid_from_dict({"schema_version": 99})
