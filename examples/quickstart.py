#!/usr/bin/env python3
"""Quickstart: run all four region-selection algorithms on one benchmark.

Builds the synthetic `gzip` stand-in, simulates the dynamic optimization
system under NET, LEI, combined NET and combined LEI, and prints the
paper's core metrics side by side.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import SystemConfig, simulate
from repro.metrics import MetricReport
from repro.workloads import benchmark_names, build_benchmark


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    if bench not in benchmark_names():
        raise SystemExit(f"unknown benchmark {bench!r}; pick one of "
                         f"{', '.join(benchmark_names())}")

    program = build_benchmark(bench, scale=scale)
    print(f"benchmark {bench}: {program.block_count} blocks, "
          f"{len(program.procedures)} procedures, scale {scale}\n")

    config = SystemConfig()  # the paper's published thresholds
    header = (f"{'selector':14s} {'hit%':>6s} {'regions':>8s} {'expansion':>10s} "
              f"{'stubs':>6s} {'transitions':>12s} {'cover90':>8s} {'counters':>9s}")
    print(header)
    print("-" * len(header))
    for selector in ("net", "lei", "combined-net", "combined-lei"):
        report = MetricReport.from_result(simulate(program, selector, config))
        cover = report.cover_set_90 if report.cover_set_90 is not None else "-"
        print(f"{selector:14s} {100 * report.hit_rate:6.2f} "
              f"{report.region_count:8d} {report.code_expansion:10d} "
              f"{report.exit_stubs:6d} {report.region_transitions:12d} "
              f"{cover!s:>8s} {report.peak_counters:9d}")

    print("\nExpected shape (the paper's findings):")
    print(" * LEI needs fewer regions, less expansion and fewer transitions")
    print(" * combination further cuts transitions, stubs and the cover set")
    print(" * combined LEI is the strongest configuration overall")


if __name__ == "__main__":
    main()
