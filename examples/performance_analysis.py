#!/usr/bin/env python3
"""Deep-dive performance analysis of one benchmark.

Demonstrates the analysis toolkit end to end on `mcf`:

1. timeline sampling — when does each selector go hot?
2. an instruction-cache model over the code cache layout;
3. the execution-time cost model;
4. a side-by-side comparison of the best and baseline selectors.

Run:  python examples/performance_analysis.py [scale]
"""

import sys

from repro import SystemConfig, Simulator, ExecutionEngine
from repro.analysis import compare_runs, first_hot_window, window_rates
from repro.analysis.layout import page_crossing_fraction
from repro.cache.icache import InstructionCache
from repro.metrics import estimated_speedup
from repro.workloads import build_benchmark

SELECTORS = ("net", "lei", "combined-net", "combined-lei")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    program = build_benchmark("mcf", scale=scale)
    config = SystemConfig()

    print(f"mcf at scale {scale}: {program.block_count} blocks\n")
    print(f"{'selector':14s} {'hit%':>6s} {'warm@':>8s} {'I$ miss%':>9s} "
          f"{'pagesX%':>8s} {'speedup':>8s}")

    runs = {}
    for selector in SELECTORS:
        icache = InstructionCache(size_bytes=512, line_bytes=32, associativity=2)
        simulator = Simulator(program, selector, config,
                              sample_every=2000, icache=icache)
        result = simulator.run(ExecutionEngine(program, seed=1).run())
        runs[selector] = result
        warm = first_hot_window(result.samples, threshold=0.95)
        print(f"{selector:14s} {100 * result.hit_rate:6.2f} "
              f"{warm if warm is not None else '-':>8} "
              f"{100 * icache.miss_rate:9.2f} "
              f"{100 * page_crossing_fraction(result):8.1f} "
              f"{estimated_speedup(result):7.2f}x")

    print("\n--- combined-lei relative to net ---")
    for line in compare_runs(runs["combined-lei"], runs["net"]).summary_lines():
        print(line)

    print("\n--- first windows of the net run ---")
    for rate in window_rates(runs["net"].samples)[:6]:
        print(f"  steps {rate.start_step:6d}-{rate.end_step:<6d} "
              f"hit={100 * rate.hit_rate:6.2f}%  "
              f"new regions={rate.regions_selected}")


if __name__ == "__main__":
    main()
