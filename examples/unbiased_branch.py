#!/usr/bin/env python3
"""Figure 4 worked example: unbiased branches and trace combination.

A loop body splits 50/50 at block A (to B or C), rejoins at D, then
splits again at a biased branch (90% to F).  A trace can hold only one
side of the unbiased split, so NET selects two traces and duplicates
everything after the join point (D, F and an exit stub) in both.

Trace combination watches T_prof observed traces, merges them into a
CFG, keeps blocks seen in at least T_min traces plus rejoining paths,
and emits a single multi-path region: no duplication, fewer stubs, and
control stays inside regardless of which way the unbiased branch goes.

Run:  python examples/unbiased_branch.py
"""

from repro import Bernoulli, CFGRegion, LoopTrip, ProgramBuilder, SystemConfig, simulate


def build_program():
    pb = ProgramBuilder("figure4")
    main = pb.procedure("main")
    main.block("A", insts=2).cond("B", model=Bernoulli(0.5))
    main.block("C", insts=3).jump("D")
    main.block("B", insts=3).jump("D")
    main.block("D", insts=2).cond("F", model=Bernoulli(0.9))
    main.block("E", insts=4).jump("latch")
    main.block("F", insts=4)
    main.block("latch", insts=1).cond("A", model=LoopTrip(4000))
    main.block("done", insts=1).halt()
    return pb.build()


def main() -> None:
    program = build_program()
    config = SystemConfig()

    for selector in ("net", "combined-net"):
        result = simulate(program, selector, config, seed=7)
        print(f"--- {selector.upper()} ---")
        for region in result.regions:
            labels = " ".join(sorted(block.label for block in region.block_list))
            kind = "CFG region" if isinstance(region, CFGRegion) else "trace"
            print(f"  #{region.selection_order} {kind}: {{{labels}}} "
                  f"({region.exit_stub_count} stubs)")
        d_copies = sum(
            1 for region in result.regions
            for block in region.block_list if block.label == "D"
        )
        print(f"  copies of join block D: {d_copies}")
        print(f"  region transitions: {result.region_transitions}")
        print(f"  exit stubs total:   {result.exit_stubs}\n")

    print("Plain NET: one trace per side of the unbiased branch, with the")
    print("join tail duplicated in both.  Combined NET: one region that")
    print("contains both sides and the tail exactly once.")


if __name__ == "__main__":
    main()
