#!/usr/bin/env python3
"""Extension: region selection under a bounded code cache.

The paper evaluates with an unbounded cache but predicts (Section 2.3)
that its algorithms help bounded systems: less duplication and fewer
regions mean fewer evictions and fewer regenerated regions.  This
script sweeps a FIFO cache from comfortable to starved and shows how
each selector degrades.

Run:  python examples/bounded_cache.py
"""

from repro import SystemConfig, simulate
from repro.workloads import build_benchmark


def main() -> None:
    program = build_benchmark("eon", scale=0.4)

    # Size the sweep off the unbounded NET working set.
    baseline = simulate(program, "net", SystemConfig(), seed=1)
    working_set = baseline.cache.resident_bytes
    print(f"eon (scale 0.4): NET working set ≈ {working_set} bytes\n")

    print(f"{'capacity':>9s} {'selector':14s} {'hit%':>7s} "
          f"{'evictions':>10s} {'regenerated':>12s}")
    for fraction in (1.2, 0.9, 0.7, 0.5):
        capacity = int(working_set * fraction)
        for selector in ("net", "lei", "combined-lei"):
            config = SystemConfig(
                cache_capacity_bytes=capacity, cache_eviction_policy="fifo"
            )
            result = simulate(program, selector, config, seed=1)
            print(f"{capacity:9d} {selector:14s} {100 * result.hit_rate:7.2f} "
                  f"{result.cache_evictions:10d} "
                  f"{result.regenerated_regions:12d}")
        print()

    print("Near the working-set size, LEI and combined LEI regenerate far")
    print("fewer regions than NET — the Section 2.3 prediction.  Under")
    print("severe starvation everyone thrashes.")


if __name__ == "__main__":
    main()
