#!/usr/bin/env python3
"""Figure 3 worked example: nested loops and inner-loop duplication.

For a simple nest — outer loop A..C around inner loop B — NET selects
three traces and *duplicates* the inner loop head B inside the trace it
builds for A (control falls from A straight into B, and only a taken
branch to a region start ends a NET trace).  LEI stops trace formation
the moment the path reaches a block that already begins a region, even
on a fall-through, so B is cached exactly once.

Run:  python examples/nested_loops.py
"""

from repro import LoopTrip, ProgramBuilder, SystemConfig, simulate


def build_program():
    pb = ProgramBuilder("figure3")
    main = pb.procedure("main")
    main.block("A", insts=3)
    main.block("B", insts=5).cond("B", model=LoopTrip(10))
    main.block("C", insts=2).cond("A", model=LoopTrip(2000))
    main.block("done", insts=1).halt()
    return pb.build()


def copies_of(label, result):
    return sum(
        1 for region in result.regions
        for block in region.block_list if block.label == label
    )


def main() -> None:
    program = build_program()
    config = SystemConfig()

    for selector in ("net", "lei"):
        result = simulate(program, selector, config)
        print(f"--- {selector.upper()} ---")
        for region in result.regions:
            labels = " ".join(block.label for block in region.block_list)
            print(f"  #{region.selection_order} [{labels}]"
                  f"{'  <- spans cycle' if region.spans_cycle else ''}")
        print(f"  copies of inner-loop head B in the cache: "
              f"{copies_of('B', result)}")
        print(f"  code expansion: {result.code_expansion} instructions\n")

    print("NET caches B twice (once alone, once duplicated inside the")
    print("A trace); LEI caches it once and expands less code.")


if __name__ == "__main__":
    main()
