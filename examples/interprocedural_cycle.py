#!/usr/bin/env python3
"""Figure 2 worked example: a loop with a backward call on its hot path.

The loop body `A -> B -> (call) E -> F -> (return) D -> A` crosses into
a function that the linker placed at a *lower* address, so the call is a
backward branch.  NET must end a trace at any taken backward branch, so
it can never span this cycle: it selects two traces that bounce control
between each other forever.  LEI reconstructs the exact executed cycle
from its history buffer and selects the single ideal trace.

Run:  python examples/interprocedural_cycle.py
"""

from repro import Bernoulli, LoopTrip, ProgramBuilder, SystemConfig, simulate
from repro.program.dot import program_to_dot


def build_program():
    pb = ProgramBuilder("figure2", entry="main")
    # Declared first => lower addresses => calls to it are backward.
    helper = pb.procedure("helper")
    helper.block("E", insts=4)
    helper.block("F", insts=2).ret()

    main = pb.procedure("main")
    main.block("A", insts=3)
    main.block("B", insts=2).call("helper")
    main.block("D", insts=2).cond("A", model=LoopTrip(5000))
    main.block("done", insts=1).halt()
    return pb.build()


def describe(result):
    print(f"  regions selected: {result.region_count}")
    for region in result.regions:
        labels = " ".join(block.label for block in region.block_list)
        cycle = "spans cycle" if region.spans_cycle else "no cycle"
        print(f"    #{region.selection_order} [{labels}]  ({cycle}, "
              f"{region.exit_stub_count} exit stubs)")
    print(f"  region transitions: {result.region_transitions}")
    print(f"  code expansion:     {result.code_expansion} instructions")
    print(f"  hit rate:           {100 * result.hit_rate:.2f}%")


def main() -> None:
    program = build_program()
    print(program_to_dot(program, title="Figure 2 CFG"))
    print()

    config = SystemConfig()
    for selector in ("net", "lei"):
        print(f"--- {selector.upper()} ---")
        describe(simulate(program, selector, config))
        print()

    print("NET splits the cycle at the backward call: two traces, two")
    print("transitions per iteration.  LEI selects one cycle-spanning")
    print("trace; after selection every iteration stays inside it.")


if __name__ == "__main__":
    main()
