#!/usr/bin/env python3
"""Two-phase methodology: collect a trace once, replay it for every
selector — exactly how the paper uses Pin (Section 2.3, footnote 4).

The binary trace file decouples program execution from region
selection: every algorithm sees the identical basic-block stream, so
metric differences are attributable to selection alone.

Run:  python examples/trace_collection.py
"""

import os
import tempfile

from repro import ExecutionEngine, Simulator, SystemConfig, replay_trace
from repro.tracing import collect_trace, trace_header
from repro.workloads import build_benchmark


def main() -> None:
    program = build_benchmark("mcf", scale=0.3)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mcf.rtrc")

        # Phase 1: collect (the Pin role).
        engine = ExecutionEngine(program, seed=42)
        steps = collect_trace(engine, path)
        header = trace_header(path)
        size_kb = os.path.getsize(path) / 1024
        print(f"collected {steps} steps of {header.program_name!r} "
              f"(seed {header.seed}) into {size_kb:.0f} KiB\n")

        # Phase 2: replay the identical stream through each selector.
        config = SystemConfig()
        print(f"{'selector':14s} {'hit%':>7s} {'regions':>8s} {'transitions':>12s}")
        for selector in ("net", "lei", "combined-net", "combined-lei"):
            simulator = Simulator(program, selector, config)
            result = simulator.run(replay_trace(path, program))
            print(f"{selector:14s} {100 * result.hit_rate:7.2f} "
                  f"{result.region_count:8d} {result.region_transitions:12d}")

        # Determinism check: a live run gives bit-identical metrics.
        live = Simulator(program, "lei", config).run(
            ExecutionEngine(program, seed=42).run()
        )
        replayed = Simulator(program, "lei", config).run(
            replay_trace(path, program)
        )
        assert live.region_transitions == replayed.region_transitions
        assert live.hit_rate == replayed.hit_rate
        print("\nlive and replayed LEI runs are identical — selection is a")
        print("pure function of the basic-block stream.")


if __name__ == "__main__":
    main()
