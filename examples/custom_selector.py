#!/usr/bin/env python3
"""Extending the framework with a custom region-selection algorithm.

The paper's framework "abstracted all details of region selection"
(footnote 4) so algorithms can be swapped freely; this library keeps
that property: implementing :class:`repro.RegionSelector` is all it
takes.  Section 5's comparators (Mojo, BOA, Wiggins/Redstone) already
ship in :mod:`repro.selection.related`; here we add the *other* classic
design from the paper's introduction — a **whole-method** selector in
the style of method-based JITs (Jikes RVM): once a procedure's entry
has executed often enough, cache the entire procedure as one
single-entry multi-path region.

Method regions never duplicate code, but they cache cold blocks and
split interprocedural hot paths at every call — which is exactly why
trace-based systems exist.

Run:  python examples/custom_selector.py
"""

from typing import Optional

from repro import CFGRegion, SystemConfig, simulate
from repro.cache.codecache import CodeCache
from repro.execution.events import Step
from repro.program.cfg import BasicBlock
from repro.program.program import Program
from repro.selection.base import RegionSelector
from repro.selection.counters import CounterTable
from repro.selection.registry import SELECTOR_FACTORIES
from repro.workloads import build_benchmark


class WholeMethodSelector(RegionSelector):
    """JIT-style region selection: the unit of caching is a procedure."""

    name = "method"
    threshold = 50

    def __init__(self, cache: CodeCache, config: SystemConfig,
                 program: Program) -> None:
        super().__init__(cache, config)
        self.program = program
        self.counters: CounterTable[BasicBlock] = CounterTable()

    def _install_procedure(self, entry: BasicBlock) -> None:
        procedure = entry.procedure
        assert procedure is not None
        blocks = list(procedure.blocks)
        edges = [
            (block, successor)
            for block in blocks
            for successor in self.program.static_successors(block)
            if successor.procedure is procedure
        ]
        self.cache.insert(CFGRegion(entry, blocks, edges))

    def on_interpreted_taken(self, step: Step):
        target = step.target
        if target is None or target.procedure is None:
            return None
        entry = target.procedure.entry
        if self.cache.contains_entry(entry):
            return None
        if self.counters.increment(entry) >= self.threshold:
            self.counters.release(entry)
            self._install_procedure(entry)
        return None

    @property
    def peak_counters(self) -> int:
        return self.counters.peak


def main() -> None:
    SELECTOR_FACTORIES["method"] = WholeMethodSelector

    program = build_benchmark("eon", scale=0.5)
    config = SystemConfig()
    print(f"{'selector':10s} {'hit%':>7s} {'regions':>8s} {'expansion':>10s} "
          f"{'stubs':>6s} {'transitions':>12s}")
    for selector in ("method", "net", "lei", "combined-lei"):
        result = simulate(program, selector, config, seed=3)
        print(f"{selector:10s} {100 * result.hit_rate:7.2f} "
              f"{result.region_count:8d} {result.code_expansion:10d} "
              f"{result.exit_stubs:6d} {result.region_transitions:12d}")

    print("\nWhole-method regions avoid duplication entirely but cache cold")
    print("blocks and must jump between regions at every call and return —")
    print("the interprocedural locality that trace selection (and LEI in")
    print("particular) is designed to recover.")


if __name__ == "__main__":
    main()
