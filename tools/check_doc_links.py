#!/usr/bin/env python3
"""Verify that intra-repository markdown links resolve.

Scans the repo's documentation set (``docs/*.md`` plus the top-level
markdown files) for ``[text](target)`` links, resolves each relative
target against the file that contains it, and reports every target
that does not exist.  External links (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped;
a ``path#fragment`` target is checked for the path only — fragment
validity is the renderer's problem, existence is ours.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link, ``file:line: target``).  Run from anywhere::

    python tools/check_doc_links.py [repo-root]

Used by CI next to the test suite; ``tests/test_docs_links.py`` runs
the same scan in-process so a broken link fails ``pytest`` locally
before it fails the pipeline.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

#: Top-level files scanned in addition to everything under docs/.
ROOT_DOCS = ("README.md", "ROADMAP.md", "DESIGN.md", "CHANGES.md",
             "EXPERIMENTS.md", "PAPER.md", "PAPERS.md")

#: Markdown inline links: [text](target).  Images ([!...]) match too —
#: a missing image is as broken as a missing page.  Reference-style
#: definitions are rare in this repo and intentionally out of scope.
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root: str) -> List[str]:
    """The markdown files the checker owns, repo-relative, sorted."""
    files = [name for name in ROOT_DOCS
             if os.path.isfile(os.path.join(root, name))]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join("docs", name))
    return files


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every inline link in a file."""
    with open(path, "r", encoding="utf-8") as handle:
        in_fence = False
        for line_number, line in enumerate(handle, start=1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK.finditer(line):
                yield line_number, match.group(1)


def broken_links(root: str) -> List[str]:
    """Every unresolvable intra-repo link, as ``file:line: target``."""
    problems: List[str] = []
    for rel in doc_files(root):
        path = os.path.join(root, rel)
        for line_number, target in iter_links(path):
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            candidate = target.split("#", 1)[0]
            if not candidate:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), candidate)
            )
            if not os.path.exists(resolved):
                problems.append(f"{rel}:{line_number}: {target}")
    return problems


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    problems = broken_links(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} broken documentation link(s)",
              file=sys.stderr)
        return 1
    checked = len(doc_files(root))
    print(f"doc links OK ({checked} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
