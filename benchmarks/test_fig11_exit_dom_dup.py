"""Figure 11: exit-dominated duplication as % of selected instructions."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig11_exit_dominated_duplication(grid, benchmark, record_figure):
    figure = compute_figure("fig11", grid)
    record_figure(figure)

    net = figure.column("net_pct")
    lei = figure.column("lei_pct")
    # Paper: duplication is real but bounded (1-7% there; our synthetic
    # programs are far smaller so the share runs higher) and LEI — which
    # emits fewer, longer traces — has proportionally at least as much,
    # which is the premise of Section 4.1.
    assert all(0.0 <= v <= 50.0 for v in net + lei)
    assert fmean(net) > 0.5, "exit-dominated duplication must exist under NET"
    assert fmean(lei) > 0.8 * fmean(net)

    benchmark(compute_figure, "fig11", grid)
