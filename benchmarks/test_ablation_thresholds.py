"""Ablation: selection thresholds (NET 50 / LEI 35 in the paper).

Section 3.2 notes that lowering the threshold (as Mojo does) trades
earlier selection — higher hit rate — against selecting colder, less
representative paths.  Sweep both thresholds and verify that trade-off.
"""

from statistics import fmean

from repro.config import SystemConfig


def _mean(grid, selector, attribute):
    return fmean(
        getattr(grid.report(bench, selector), attribute)
        for bench in grid.benchmarks
    )


def test_net_threshold_sweep(ablation_config_grid, benchmark, record_text):
    grids = {
        threshold: ablation_config_grid(
            SystemConfig(net_threshold=threshold), selectors=("net",)
        )
        for threshold in (15, 50, 150)
    }
    benchmark(ablation_config_grid, SystemConfig(net_threshold=50), ("net",))

    hit = {t: _mean(g, "net", "hit_rate") for t, g in grids.items()}
    expansion = {t: _mean(g, "net", "code_expansion") for t, g in grids.items()}
    record_text(
        "ablation-net-threshold",
        "Ablation: NET execution threshold\n"
        + "\n".join(
            f"threshold={t:4d}  hit_rate={hit[t]:.4f}  "
            f"mean_code_expansion={expansion[t]:.0f}"
            for t in sorted(grids)
        )
        + "\nLower thresholds select earlier (higher hit rate) but "
        "select more (more expansion).",
    )

    assert hit[15] >= hit[150]
    assert expansion[15] >= expansion[150]


def test_lei_threshold_sweep(ablation_config_grid, benchmark, record_text):
    grids = {
        threshold: ablation_config_grid(
            SystemConfig(lei_threshold=threshold), selectors=("lei",)
        )
        for threshold in (10, 35, 100)
    }
    benchmark(ablation_config_grid, SystemConfig(lei_threshold=35), ("lei",))
    hit = {t: _mean(g, "lei", "hit_rate") for t, g in grids.items()}
    record_text(
        "ablation-lei-threshold",
        "Ablation: LEI cycle threshold\n"
        + "\n".join(f"threshold={t:4d}  hit_rate={hit[t]:.4f}" for t in sorted(grids))
        + "\nPaper (3.2): a lower threshold could recover LEI's small "
        "hit-rate deficit on mcf/gcc.",
    )
    assert hit[10] >= hit[100]
