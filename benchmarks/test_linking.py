"""Footnote 9: combination reduces inter-region links.

"We ignore the memory required for links between regions in the cache.
Our algorithms are very likely to reduce the number of such links, as
fewer regions are selected and each contains more related code."
"""

from statistics import fmean

from repro.config import SystemConfig
from repro.metrics import inter_region_links
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

SELECTORS = ("net", "lei", "combined-net", "combined-lei")


def run_links(scale, seed=1):
    links = {s: [] for s in SELECTORS}
    for bench in benchmark_names():
        program = build_benchmark(bench, scale=scale)
        for selector in SELECTORS:
            result = simulate(program, selector, SystemConfig(), seed=seed)
            links[selector].append(inter_region_links(result))
    return links


def test_footnote9_links(ablation_scale, benchmark, record_text):
    links = benchmark.pedantic(
        run_links, args=(ablation_scale,), rounds=1, iterations=1
    )
    means = {s: fmean(v) for s, v in links.items()}
    lines = ["Footnote 9: mean inter-region links per benchmark"]
    for selector, mean in means.items():
        lines.append(f"  {selector:14s} {mean:7.1f}")
    lines.append("Fewer regions with more related code inside -> fewer "
                 "linked stubs to maintain.")
    record_text("footnote9-links", "\n".join(lines))

    assert means["lei"] < means["net"]
    assert means["combined-net"] < means["net"]
    assert means["combined-lei"] < means["lei"]
    assert means["combined-lei"] == min(means.values())
