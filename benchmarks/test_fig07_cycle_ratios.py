"""Figure 7: improvement of LEI over NET in selecting cycle-spanning traces."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig07_cycle_ratios(grid, benchmark, record_figure):
    figure = compute_figure("fig07", grid)
    record_figure(figure)

    spanned = figure.column("delta_spanned_pp")
    executed = figure.column("delta_executed_pp")
    # Paper: LEI spans more cycles overall (~+5pp) and executed cycles
    # rise with it.
    assert fmean(spanned) > 2.0
    assert fmean(executed) > 2.0
    # The two metrics are "highly correlated": same sign for most
    # benchmarks.
    agreeing = sum(1 for s, e in zip(spanned, executed) if s * e >= 0)
    assert agreeing >= len(spanned) - 2

    benchmark(compute_figure, "fig07", grid)
