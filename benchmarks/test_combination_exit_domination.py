"""Section 4.3.1: trace combination reduces exit domination."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_combination_reduces_exit_domination(grid, benchmark, record_figure):
    figure = compute_figure("expdom", grid)
    record_figure(figure)

    net_regions = fmean(figure.column("net_regions"))
    cnet_regions = fmean(figure.column("cnet_regions"))
    lei_regions = fmean(figure.column("lei_regions"))
    clei_regions = fmean(figure.column("clei_regions"))
    # Paper: the number of exit-dominated regions decreases by ~40%.
    assert cnet_regions < net_regions * 0.85
    assert clei_regions < lei_regions * 0.85

    net_dup = fmean(figure.column("net_dup_insts"))
    cnet_dup = fmean(figure.column("cnet_dup_insts"))
    # Paper: ~65% of exit-dominated duplication is avoided — and
    # duplication falls *more* than the dominated-region count, because
    # rejoining paths are folded into the region.
    assert cnet_dup < net_dup * 0.6
    assert (1 - cnet_dup / net_dup) > (1 - cnet_regions / net_regions)

    benchmark(compute_figure, "expdom", grid)
