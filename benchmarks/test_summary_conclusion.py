"""Section 6 conclusion: combined LEI versus the NET baseline."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_summary_combined_lei_vs_net(grid, benchmark, record_figure):
    figure = compute_figure("summary", grid)
    record_figure(figure)

    expansion = [v for v in figure.column("code_expansion") if v is not None]
    stubs = [v for v in figure.column("exit_stubs") if v is not None]
    transitions = [v for v in figure.column("region_transitions") if v is not None]
    cover = [v for v in figure.column("cover_set_90") if v is not None]

    # Paper: "our algorithms reduce code expansion by 9% and the number
    # of exit stubs by 32% while simultaneously cutting the number of
    # region transitions in half"; the 90% cover set improves by more
    # than 25% for every benchmark (44% mean).
    assert fmean(expansion) < 1.0
    assert fmean(stubs) < 0.8
    assert fmean(transitions) < 0.7
    assert fmean(cover) < 0.75
    improved = sum(1 for v in cover if v < 1.0)
    assert improved >= len(cover) - 1

    benchmark(compute_figure, "summary", grid)


def test_supporting_statistics(grid, benchmark, record_figure):
    """Average region size (3.2.2) and total region counts (4.3.3)."""
    size_figure = benchmark(compute_figure, "avgsize", grid)
    record_figure(size_figure)
    count_figure = compute_figure("regioncount", grid)
    record_figure(count_figure)

    # Paper: combination reduces how many regions are selected (9% NET /
    # 30% LEI), concentrating optimization effort.
    assert fmean(count_figure.column("combined_net")) < fmean(count_figure.column("net"))
    assert fmean(count_figure.column("combined_lei")) < fmean(count_figure.column("lei"))
