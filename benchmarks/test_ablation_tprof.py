"""Ablation (paper footnote 8): T_prof = 5, T_min = 2.

"Setting T_prof = 5 and T_min = 2 results in smaller but similar
improvements" — the profiling window can shrink 3x if observation
overhead matters, at modest cost.
"""

from statistics import fmean

from repro.config import SystemConfig


def _transition_ratio(grid, combined, plain):
    ratios = []
    for bench in grid.benchmarks:
        c = grid.report(bench, combined).region_transitions
        p = grid.report(bench, plain).region_transitions
        if p:
            ratios.append(c / p)
    return fmean(ratios)


def test_small_profiling_window(ablation_config_grid, benchmark, record_text):
    default = SystemConfig()
    small = SystemConfig(
        combine_t_prof=5, combine_t_min=2,
        # Keep "selected after the same number of interpreted
        # executions": T_start + T_prof stays at 50 / 35.
        combined_net_t_start=45, combined_lei_t_start=30,
    )
    grid_default = ablation_config_grid(default)
    grid_small = benchmark(ablation_config_grid, small)

    full_ratio = _transition_ratio(grid_default, "combined-net", "net")
    small_ratio = _transition_ratio(grid_small, "combined-net", "net")
    record_text(
        "ablation-tprof",
        "Ablation footnote 8 (T_prof=5, T_min=2)\n"
        f"combined-NET transition ratio: T_prof=15 -> {full_ratio:.3f}, "
        f"T_prof=5 -> {small_ratio:.3f}\n"
        "Paper: smaller but similar improvements with the short window.",
    )
    # Both windows must still improve locality.
    assert full_ratio < 1.0
    assert small_ratio < 1.0
    # And the short window cannot be wildly better than the long one.
    assert small_ratio > full_ratio - 0.25
