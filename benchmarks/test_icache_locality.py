"""Extension experiment: instruction-cache behaviour of the code cache.

The paper measures region transitions as a locality proxy because
"control jumps between distant traces" hurt "instruction cache
performance" (Section 1).  With an I-cache model over the code cache's
actual layout, the proxy becomes a direct measurement: miss rates per
selector across the suite.

A small cache is used so the suite's working set exercises capacity and
conflict behaviour (our synthetic programs cache only a few KiB of
code; a full 32 KiB L1I would hold everything and show nothing).
"""

from statistics import fmean

from repro.cache.icache import InstructionCache
from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

SELECTORS = ("net", "lei", "combined-net", "combined-lei")


def run_miss_rates(scale, seed=1):
    rates = {s: [] for s in SELECTORS}
    for bench in benchmark_names():
        program = build_benchmark(bench, scale=scale)
        for selector in SELECTORS:
            icache = InstructionCache(
                size_bytes=512, line_bytes=32, associativity=2
            )
            simulate(program, selector, SystemConfig(), seed=seed,
                     icache=icache)
            rates[selector].append(icache.miss_rate)
    return rates


def test_icache_miss_rates(ablation_scale, benchmark, record_text):
    rates = benchmark.pedantic(
        run_miss_rates, args=(ablation_scale,), rounds=1, iterations=1
    )

    means = {s: fmean(v) for s, v in rates.items()}
    lines = ["Extension: I-cache miss rate over the code-cache layout "
             "(512 B, 32 B lines, 2-way)"]
    for selector, mean in means.items():
        lines.append(f"  {selector:14s} {100 * mean:6.2f}% "
                     f"(max {100 * max(rates[selector]):.2f}%)")
    lines.append("Section 1's claim made direct: fewer/larger regions -> "
                 "fewer jumps between distant cache areas -> fewer misses.")
    record_text("extension-icache", "\n".join(lines))

    # The paper's locality ordering must show up in the hardware model.
    assert means["lei"] < means["net"]
    assert means["combined-lei"] < means["net"]
    assert means["combined-lei"] <= means["lei"] * 1.05
