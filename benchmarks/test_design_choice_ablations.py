"""Design-choice ablations called out in DESIGN.md section 6.

Two rules whose removal the paper reasons about in prose become
measurable switches here:

* NET's interprocedural-forward-path rule (stop at backward calls and
  returns): relaxing it lets some traces span interprocedural cycles
  but "enables NET to limit code expansion" is exactly what breaks —
  expansion rises on the call-heavy benchmarks.
* LEI's follows-exit start rule ("grow from an existing trace"):
  removing it strands exit-chained hot code in the interpreter.
"""

from statistics import fmean

from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

CALL_HEAVY = ("eon", "gap", "vortex", "mcf")


def run_net_rule_ablation(scale, seed=1):
    rows = {}
    for bench in CALL_HEAVY:
        program = build_benchmark(bench, scale=scale)
        strict = simulate(program, "net", SystemConfig(), seed=seed)
        relaxed = simulate(
            program, "net",
            SystemConfig(net_stop_at_backward_calls=False), seed=seed,
        )
        rows[bench] = (strict, relaxed)
    return rows


def test_net_backward_call_rule(ablation_scale, benchmark, record_text):
    rows = benchmark.pedantic(
        run_net_rule_ablation, args=(ablation_scale,), rounds=1, iterations=1
    )
    lines = ["Ablation: NET without the backward-call/return stop rule"]
    lines.append(f"{'bench':8s} {'expansion':>18s} {'spanned regions':>16s}")
    for bench, (strict, relaxed) in rows.items():
        strict_spans = sum(1 for r in strict.regions if r.spans_cycle)
        relaxed_spans = sum(1 for r in relaxed.regions if r.spans_cycle)
        lines.append(f"{bench:8s} {strict.code_expansion:8d} ->{relaxed.code_expansion:7d} "
                     f"{strict_spans:7d} ->{relaxed_spans:6d}")
    lines.append("Paper (2.2): the rule limits code expansion at the cost "
                 "of never spanning an interprocedural cycle.")
    record_text("ablation-net-backward-calls", "\n".join(lines))

    total_strict = sum(s.code_expansion for s, _ in rows.values())
    total_relaxed = sum(r.code_expansion for _, r in rows.values())
    assert total_relaxed >= total_strict


def run_lei_rule_ablation(scale, seed=1):
    hits = {"full": [], "restricted": []}
    for bench in benchmark_names():
        program = build_benchmark(bench, scale=scale)
        hits["full"].append(
            simulate(program, "lei", SystemConfig(), seed=seed).hit_rate
        )
        hits["restricted"].append(
            simulate(program, "lei",
                     SystemConfig(lei_allow_exit_cycles=False),
                     seed=seed).hit_rate
        )
    return hits


def test_lei_follows_exit_rule(ablation_scale, benchmark, record_text):
    hits = benchmark.pedantic(
        run_lei_rule_ablation, args=(ablation_scale,), rounds=1, iterations=1
    )
    full = fmean(hits["full"])
    restricted = fmean(hits["restricted"])
    record_text(
        "ablation-lei-exit-rule",
        "Ablation: LEI without the follows-exit start condition\n"
        f"  mean hit rate: with rule {100 * full:.2f}%, "
        f"without {100 * restricted:.2f}%\n"
        "Without it, code reachable only through region exits can never "
        "start a trace and stays interpreted.",
    )
    assert restricted < full
