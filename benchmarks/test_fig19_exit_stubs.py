"""Figure 19: effect of trace combination on exit stubs."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig19_exit_stubs(grid, benchmark, record_figure):
    figure = compute_figure("fig19", grid)
    record_figure(figure)

    cn_ratio = [v for v in figure.column("cn_over_net") if v is not None]
    cl_ratio = [v for v in figure.column("cl_over_lei") if v is not None]
    # Paper: 18% fewer stubs for NET and 26% fewer for LEI; stubs are a
    # large cache cost (footnote 3: often over a third of cached
    # instructions), so this is a first-order saving.
    assert fmean(cn_ratio) < 0.9
    assert fmean(cl_ratio) < 0.9
    assert max(cn_ratio + cl_ratio) < 1.1

    benchmark(compute_figure, "fig19", grid)
