"""Figure 8: LEI code expansion and region transitions relative to NET."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig08_expansion_and_transitions(grid, benchmark, record_figure):
    figure = compute_figure("fig08", grid)
    record_figure(figure)

    expansion = [v for v in figure.column("code_expansion_ratio") if v is not None]
    transitions = [v for v in figure.column("region_transition_ratio") if v is not None]
    # Paper: mean expansion 0.92 (LEI copies less code), mean
    # transitions 0.80 (LEI has better locality).
    assert fmean(expansion) < 1.0
    assert fmean(transitions) < 0.95
    # LEI cannot be catastrophically worse anywhere.
    assert max(expansion) < 1.5

    benchmark(compute_figure, "fig08", grid)
