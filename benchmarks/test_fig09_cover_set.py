"""Figure 9: minimum traces needed to cover 90% of executed instructions."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig09_cover_sets(grid, benchmark, record_figure):
    figure = compute_figure("fig09", grid)
    record_figure(figure)

    rows = [
        (net, lei)
        for net, lei in zip(figure.column("net"), figure.column("lei"))
        if net is not None and lei is not None
    ]
    assert len(rows) >= 10, "cover sets should be defined for almost all benchmarks"
    # Paper: LEI requires a significantly smaller set in all cases
    # (18% average reduction).
    assert all(lei <= net for net, lei in rows)
    net_mean = fmean(net for net, _ in rows)
    lei_mean = fmean(lei for _, lei in rows)
    assert lei_mean < net_mean * 0.95

    benchmark(compute_figure, "fig09", grid)
