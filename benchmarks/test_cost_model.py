"""Cost-model experiment: cover sets predict estimated performance.

Bala et al. found "the 90% cover sets were a perfect predictor of
performance"; the paper leans on that to argue LEI and combination
will be faster in practice.  With an explicit cost model we can close
the loop: price every run and check the predicted speedups line up with
the cover sets — and that the selector ordering survives a sweep of the
model's prices.
"""

from statistics import fmean

from repro.metrics import CostModel, estimated_speedup, estimated_time
from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

SELECTORS = ("net", "lei", "combined-net", "combined-lei")


def run_suite(scale, seed=1):
    """Simulate the whole grid once; price it later, as often as needed."""
    results = {s: [] for s in SELECTORS}
    for bench in benchmark_names():
        program = build_benchmark(bench, scale=scale)
        for selector in SELECTORS:
            results[selector].append(
                simulate(program, selector, SystemConfig(), seed=seed)
            )
    return results


def price(results, model=None):
    model = model if model is not None else CostModel()
    return {
        selector: fmean(estimated_speedup(r, model) for r in runs)
        for selector, runs in results.items()
    }


def test_estimated_speedups(ablation_scale, benchmark, record_text):
    means = price(benchmark.pedantic(
        run_suite, args=(ablation_scale,), rounds=1, iterations=1
    ))
    lines = ["Cost model: mean estimated speedup over pure interpretation"]
    for selector, speedup in means.items():
        lines.append(f"  {selector:14s} {speedup:6.2f}x")
    lines.append("Paper's argument chain: smaller cover set -> better "
                 "locality -> better performance; combined LEI should lead.")
    record_text("cost-model-speedups", "\n".join(lines))

    # All four configurations must beat interpretation by a lot.
    assert all(speedup > 3.0 for speedup in means.values())
    # The paper's quality ordering must be reflected in time.
    assert means["lei"] > means["net"]
    assert means["combined-lei"] > means["net"]
    assert means["combined-lei"] >= means["lei"] * 0.97


def test_ordering_insensitive_to_prices(ablation_scale, benchmark, record_text):
    """Sweep transition/switch prices 4x in both directions: the LEI>NET
    ordering is a property of the runs, not of the price tags."""
    sweeps = {
        "cheap": CostModel(region_transition=2.5, cache_switch=12.5),
        "default": CostModel(),
        "dear": CostModel(region_transition=40.0, cache_switch=200.0),
    }
    runs = benchmark.pedantic(
        run_suite, args=(ablation_scale,), rounds=1, iterations=1
    )
    results = {name: price(runs, model) for name, model in sweeps.items()}
    lines = ["Cost-model sensitivity: mean speedup under 3 price sets"]
    for name, means in results.items():
        cells = "  ".join(f"{s}={means[s]:.2f}x" for s in SELECTORS)
        lines.append(f"  {name:8s} {cells}")
    record_text("cost-model-sensitivity", "\n".join(lines))

    for name, means in results.items():
        assert means["lei"] > means["net"], name
        assert means["combined-lei"] > means["net"], name
