"""Transient behaviour: warm-up speed and phase-change effects.

Two claims from the paper's discussion become measurable with timeline
sampling:

* Selection thresholds delay hotness (Sections 2.1/3.2): every selector
  spends an initial stretch interpreting; LEI's lower threshold (35 vs
  50) and immediate ``jump newT`` make its warm-up no slower than NET's
  despite forming bigger traces.
* Phases (Section 4.3.1): trace combination "relies on current
  execution being representative of future execution.  This is often
  not the case, as programs have been shown to execute different paths
  in different phases" — a phase flip shows up as a windowed hit-rate
  dip well after warm-up.
"""

from repro.analysis.timeline import coldest_window, first_hot_window, window_rates
from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads import build_benchmark

SELECTORS = ("net", "lei", "combined-net", "combined-lei")


def run_warmups(scale, seed=1, window=1000):
    rows = []
    for bench in ("gzip", "mcf", "vortex"):
        program = build_benchmark(bench, scale=scale)
        cells = {}
        for selector in SELECTORS:
            result = simulate(program, selector, SystemConfig(), seed=seed,
                              sample_every=window)
            cells[selector] = first_hot_window(result.samples, threshold=0.95)
        rows.append((bench, cells))
    return rows


def test_warmup_speed(ablation_scale, benchmark, record_text):
    rows = benchmark.pedantic(
        run_warmups, args=(ablation_scale,), rounds=1, iterations=1
    )
    lines = ["Warm-up: end step of the first 1000-step window with >=95% hit rate"]
    lines.append(f"{'bench':8s}  " + "  ".join(f"{s:>13s}" for s in SELECTORS))
    for bench, cells in rows:
        lines.append(f"{bench:8s}  " + "  ".join(
            f"{cells[s] if cells[s] is not None else 'never':>13}"
            for s in SELECTORS
        ))
    record_text("warmup-speed", "\n".join(lines))

    for bench, cells in rows:
        for selector, step in cells.items():
            assert step is not None, (bench, selector)
        # LEI's lower threshold must not warm slower than NET by more
        # than one sampling window.
        assert cells["lei"] <= cells["net"] + 1000, bench


def test_phase_change_dips_hit_rate(ablation_scale, benchmark, record_text):
    """perlbmk's opcode mix flips every 40k engine steps; after warm-up
    the coldest window should sit at a phase boundary, as new dominant
    paths must be selected from scratch."""
    program = build_benchmark("perlbmk", scale=max(ablation_scale, 0.25))
    result = benchmark.pedantic(
        simulate, args=(program, "combined-net"),
        kwargs={"seed": 1, "sample_every": 5000}, rounds=1, iterations=1,
    )
    rates = window_rates(result.samples)
    coldest = coldest_window(result.samples)
    assert coldest is not None
    lines = ["Phase behaviour (perlbmk, combined-net):"]
    for rate in rates[:12]:
        lines.append(f"  {rate.start_step:7d}-{rate.end_step:<7d} "
                     f"hit={100 * rate.hit_rate:6.2f}%")
    lines.append(f"coldest post-warmup window: {coldest.start_step}-"
                 f"{coldest.end_step} at {100 * coldest.hit_rate:.2f}%")
    record_text("phase-dips", "\n".join(lines))

    # The coldest post-warmup window is measurably colder than the
    # steady-state median — phases leave a dent.
    steady = sorted(r.hit_rate for r in rates[1:])
    median = steady[len(steady) // 2]
    assert coldest.hit_rate < median
