"""Figure 10: peak profiling counters required by LEI relative to NET."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig10_counter_memory(grid, benchmark, record_figure):
    figure = compute_figure("fig10", grid)
    record_figure(figure)

    ratios = [v for v in figure.column("lei_over_net") if v is not None]
    # Paper: LEI needs only about two-thirds of NET's counter memory.
    assert fmean(ratios) < 0.85
    # And never dramatically more anywhere.
    assert max(ratios) <= 1.35

    benchmark(compute_figure, "fig10", grid)
