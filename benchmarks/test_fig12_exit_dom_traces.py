"""Figure 12: proportion of traces that are exit-dominated."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig12_exit_dominated_traces(grid, benchmark, record_figure):
    figure = compute_figure("fig12", grid)
    record_figure(figure)

    net = figure.column("net_pct")
    lei = figure.column("lei_pct")
    # Paper: a high percentage of traces are exit-dominated (15% NET,
    # 22% LEI), and "in almost all cases, LEI produces more".
    assert fmean(net) > 10.0
    assert fmean(lei) >= fmean(net) * 0.9

    benchmark(compute_figure, "fig12", grid)


def test_fig12_eon_is_the_fanout_outlier(grid, benchmark):
    """Paper: eon stands out because a few traces (shared ggPoint3
    constructors) each exit-dominate a large number of other traces."""
    figure = benchmark(compute_figure, "fig12", grid)
    fanouts = {
        name: values[figure.columns.index("net_max_dominator_fanout")]
        for name, values in figure.rows
    }
    eon = fanouts.pop("eon")
    assert eon >= max(fanouts.values())
    assert eon >= 2 * fmean(fanouts.values())
