"""Extension experiment: bounded code caches (motivated by Section 2.3).

The paper predicts its algorithms help bounded-cache systems because
they "reduce code duplication and produce fewer cached regions ...
[and] regenerate fewer evicted regions".  This bench sizes a FIFO cache
relative to each selector-agnostic working set and reports evictions,
regenerations and hit rate for NET, LEI and combined LEI.
"""

from statistics import fmean

from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads import build_benchmark

BENCHES = ("eon", "mcf", "vortex")
SELECTORS = ("net", "lei", "combined-lei")


def _working_set_bytes(program, seed):
    result = simulate(program, "net", SystemConfig(), seed=seed)
    return result.cache.resident_bytes


def run_pressure_table(scale, seed=1, fit_fraction=0.85):
    rows = []
    for bench in BENCHES:
        program = build_benchmark(bench, scale=scale)
        capacity = max(64, int(_working_set_bytes(program, seed) * fit_fraction))
        cells = {}
        for selector in SELECTORS:
            config = SystemConfig(
                cache_capacity_bytes=capacity, cache_eviction_policy="fifo"
            )
            result = simulate(program, selector, config, seed=seed)
            cells[selector] = result
        rows.append((bench, capacity, cells))
    return rows


def test_bounded_cache_pressure(grid, ablation_scale, benchmark, record_text):
    rows = benchmark.pedantic(
        run_pressure_table, args=(ablation_scale,), rounds=1, iterations=1
    )

    lines = ["Extension: FIFO code cache at 85% of NET's working set"]
    lines.append(f"{'bench':8s} {'capacity':>9s}  " + "  ".join(
        f"{s + ' regen/hit':>22s}" for s in SELECTORS
    ))
    for bench, capacity, cells in rows:
        cell_text = "  ".join(
            f"{cells[s].regenerated_regions:10d}/{cells[s].hit_rate:.3f}    "
            for s in SELECTORS
        )
        lines.append(f"{bench:8s} {capacity:9d}  {cell_text}")
    lines.append("Paper (2.3): fewer regions and less duplication should "
                 "mean fewer regenerated regions under a bounded cache.")
    record_text("extension-bounded-cache", "\n".join(lines))

    lei_regen = fmean(cells["lei"].regenerated_regions for _, _, cells in rows)
    net_regen = fmean(cells["net"].regenerated_regions for _, _, cells in rows)
    clei_regen = fmean(cells["combined-lei"].regenerated_regions for _, _, cells in rows)
    assert lei_regen <= net_regen
    assert clei_regen <= net_regen
    # Better residency shows up as execution staying in the cache.
    assert (fmean(cells["lei"].hit_rate for _, _, cells in rows)
            >= fmean(cells["net"].hit_rate for _, _, cells in rows) - 0.02)
