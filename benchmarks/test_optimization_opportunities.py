"""Section 4.4 experiment: optimization opportunities per selector.

The paper argues (qualitatively) that multi-path regions are better
optimization units.  This bench quantifies the three factors over the
suite: removed unconditional jumps (layout), join/diamond context
(compensation-free redundancy elimination), and LICM hoist space.
"""

from repro.config import SystemConfig
from repro.optimizer import OptimizationReport
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

SELECTORS = ("net", "lei", "combined-net", "combined-lei")


def suite_reports(scale, seed=1):
    totals = {}
    for selector in SELECTORS:
        regions = []
        for bench in benchmark_names():
            program = build_benchmark(bench, scale=scale)
            regions.extend(simulate(program, selector, SystemConfig(),
                                    seed=seed).regions)
        totals[selector] = OptimizationReport.from_regions(regions)
    return totals


def test_optimization_opportunities(ablation_scale, benchmark, record_text):
    totals = benchmark.pedantic(
        suite_reports, args=(ablation_scale,), rounds=1, iterations=1
    )

    lines = ["Section 4.4: optimization opportunities over the whole suite"]
    lines.append(f"{'selector':14s} {'regions':>8s} {'multipath':>10s} "
                 f"{'joins':>6s} {'diamonds':>9s} {'cycles':>7s} {'licm':>5s} "
                 f"{'rm_jumps':>9s}")
    for selector, report in totals.items():
        lines.append(
            f"{selector:14s} {report.regions_analyzed:8d} "
            f"{report.multipath_regions:10d} {report.internal_joins:6d} "
            f"{report.complete_diamonds:9d} {report.regions_with_cycles:7d} "
            f"{report.licm_ready_regions:5d} {report.removed_jumps:9d}"
        )
    lines.append("Paper (4.4): regions with multiple paths give the "
                 "optimizer if-else context and LICM hoist space that "
                 "traces — even cycle-spanning ones — cannot.")
    record_text("section4.4-opportunities", "\n".join(lines))

    # Traces are straight-line: zero joins by construction.
    assert totals["net"].internal_joins == 0
    assert totals["lei"].internal_joins == 0
    # Combination creates join context and complete diamonds.
    assert totals["combined-net"].internal_joins > 0
    assert totals["combined-lei"].internal_joins > 0
    assert totals["combined-net"].complete_diamonds > 0
    # Only multi-path regions can be LICM-ready; traces never are.
    assert totals["net"].licm_ready_regions == 0
    assert totals["lei"].licm_ready_regions == 0
    assert (totals["combined-lei"].licm_ready_regions
            + totals["combined-net"].licm_ready_regions) > 0
    # LEI still wins the layout factor among plain selectors: it spans
    # cycles, so more of its regions contain loops at all.
    assert (totals["lei"].regions_with_cycles
            >= totals["net"].regions_with_cycles)
