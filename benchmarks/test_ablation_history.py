"""Ablation: LEI history buffer size (500 in the paper, Section 3.2).

"Intuitively, this seems small enough to require little memory but
large enough to capture very long cycles" — sweep the size and verify
the plateau: a tiny buffer cripples cycle detection, while growing past
500 changes little.
"""

from statistics import fmean

from repro.config import SystemConfig


def _lei_spanned(grid):
    return fmean(
        grid.report(bench, "lei").spanned_cycle_ratio
        for bench in grid.benchmarks
    )


def _lei_regions(grid):
    return sum(grid.report(bench, "lei").region_count for bench in grid.benchmarks)


def test_history_buffer_sweep(ablation_config_grid, benchmark, record_text):
    sizes = (8, 60, 500, 2000)
    grids = {}
    for size in sizes:
        config = SystemConfig(history_buffer_size=size)
        grids[size] = ablation_config_grid(config, selectors=("lei",))
    benchmark(
        ablation_config_grid,
        SystemConfig(history_buffer_size=500),
        ("lei",),
    )

    regions = {size: _lei_regions(grids[size]) for size in sizes}
    spanned = {size: _lei_spanned(grids[size]) for size in sizes}
    record_text(
        "ablation-history",
        "Ablation: LEI history buffer size\n"
        + "\n".join(
            f"size={size:5d}  regions={regions[size]:4d}  "
            f"spanned_cycle_ratio={spanned[size]:.3f}"
            for size in sizes
        )
        + "\nPaper: 500 is small but captures long cycles; the "
        "default sits on the plateau.",
    )

    # A buffer too small to hold an iteration's branches finds far fewer
    # cycles (and therefore selects fewer regions).
    assert regions[8] < regions[500]
    # Past the default the behaviour plateaus.
    assert abs(regions[2000] - regions[500]) <= max(3, regions[500] // 5)
