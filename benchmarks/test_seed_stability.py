"""Seed-robustness of the headline results.

Our synthetic programs draw branch outcomes from a seeded PRNG; the
paper's claims should not hinge on a lucky seed.  Recompute the two
headline ratios under three seeds and assert both the direction and a
bounded spread.
"""

from repro.experiments.stability import seed_stability

SEEDS = (1, 7, 23)
BENCHES = ("gzip", "gcc", "mcf", "eon", "bzip2")


def test_lei_transition_ratio_is_seed_stable(ablation_scale, benchmark, record_text):
    report = benchmark.pedantic(
        seed_stability,
        args=("lei", "net", "region_transitions"),
        kwargs={"seeds": SEEDS, "scale": ablation_scale, "benchmarks": BENCHES},
        rounds=1, iterations=1,
    )
    record_text("seed-stability-transitions", report.summary_line())
    # Direction holds for every seed, not just the mean.
    assert all(value < 1.0 for value in report.per_seed.values())
    assert report.spread < 0.35


def test_combined_lei_cover_ratio_is_seed_stable(ablation_scale, benchmark, record_text):
    report = benchmark.pedantic(
        seed_stability,
        args=("combined-lei", "net", "code_expansion"),
        kwargs={"seeds": SEEDS, "scale": ablation_scale, "benchmarks": BENCHES},
        rounds=1, iterations=1,
    )
    record_text("seed-stability-expansion", report.summary_line())
    assert all(value < 1.1 for value in report.per_seed.values())
    assert report.spread < 0.35
