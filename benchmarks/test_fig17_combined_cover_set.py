"""Figure 17: reduction in 90% cover set size under trace combination."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def _paired(figure, plain, combined):
    return [
        (p, c)
        for p, c in zip(figure.column(plain), figure.column(combined))
        if p is not None and c is not None
    ]


def test_fig17_combined_cover_sets(grid, benchmark, record_figure):
    figure = compute_figure("fig17", grid)
    record_figure(figure)

    net_pairs = _paired(figure, "net", "combined_net")
    lei_pairs = _paired(figure, "lei", "combined_lei")
    assert len(net_pairs) >= 10 and len(lei_pairs) >= 10

    # Paper: consistent reduction (mean 15% for NET, 28% for LEI), with
    # at most a trivial increase in one case.
    net_reduction = 1 - fmean(c for _, c in net_pairs) / fmean(p for p, _ in net_pairs)
    lei_reduction = 1 - fmean(c for _, c in lei_pairs) / fmean(p for p, _ in lei_pairs)
    assert net_reduction > 0.05
    assert lei_reduction > 0.10
    # Combination benefits LEI more than NET.
    assert lei_reduction > net_reduction
    increases = sum(1 for p, c in net_pairs + lei_pairs if c > p)
    assert increases <= 2

    benchmark(compute_figure, "fig17", grid)
