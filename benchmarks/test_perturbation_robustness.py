"""Robustness: the headline ratios survive workload perturbation.

Every Bernoulli bias is jittered by up to +-0.08 and every trip count
scaled by up to +-30%, under several perturbation seeds.  If the
paper-shape conclusions held only for the exact baked-in constants,
this sweep would expose it.
"""

from statistics import fmean

from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads.perturb import build_perturbed_benchmark

BENCHES = ("gzip", "mcf", "eon", "twolf")
PERTURBATION_SEEDS = (0, 11, 42)  # 0 = unperturbed baseline


def run_perturbed_ratios(scale, seed=1):
    """Per perturbation seed: mean LEI/NET transition and expansion ratios."""
    out = {}
    for pseed in PERTURBATION_SEEDS:
        transition_ratios = []
        expansion_ratios = []
        for bench in BENCHES:
            program = build_perturbed_benchmark(bench, pseed, scale=scale)
            net = simulate(program, "net", SystemConfig(), seed=seed)
            lei = simulate(program, "lei", SystemConfig(), seed=seed)
            if net.region_transitions:
                transition_ratios.append(
                    lei.region_transitions / net.region_transitions
                )
            if net.code_expansion:
                expansion_ratios.append(lei.code_expansion / net.code_expansion)
        out[pseed] = (fmean(transition_ratios), fmean(expansion_ratios))
    return out


def test_headline_ratios_survive_perturbation(ablation_scale, benchmark,
                                              record_text):
    ratios = benchmark.pedantic(
        run_perturbed_ratios, args=(ablation_scale,), rounds=1, iterations=1
    )
    lines = ["Robustness: LEI/NET ratios under workload perturbation "
             "(biases +-0.08, trips +-30%)"]
    for pseed, (transitions, expansion) in ratios.items():
        tag = "baseline" if pseed == 0 else f"seed {pseed}"
        lines.append(f"  {tag:10s} transitions={transitions:.3f} "
                     f"expansion={expansion:.3f}")
    record_text("perturbation-robustness", "\n".join(lines))

    for pseed, (transitions, expansion) in ratios.items():
        # LEI keeps its locality win on every perturbed variant.
        assert transitions < 1.0, pseed
        # And never blows up expansion.
        assert expansion < 1.25, pseed
