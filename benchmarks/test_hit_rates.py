"""Hit rates (Sections 3.2 and 4.3): everything stays cache-resident."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_hit_rates(grid, benchmark, record_figure):
    figure = compute_figure("hitrate", grid)
    record_figure(figure)

    # Paper: >98-99% everywhere on full SPEC runs; our programs run
    # ~10^6 instructions instead of ~10^10, so the warm-up fraction is
    # larger — and larger still at reduced REPRO_BENCH_SCALE.
    mean_floor, min_floor = (93.0, 85.0) if grid.scale >= 1.0 else (85.0, 70.0)
    for column in figure.columns:
        rates = figure.column(column)
        assert fmean(rates) > mean_floor, column
        assert min(rates) > min_floor, column

    # Paper: LEI's hit rate stays within a fraction of a percent of
    # NET's, and combination moves it by ~0.1%.
    net = fmean(figure.column("net"))
    for column in ("lei", "combined_net", "combined_lei"):
        assert abs(fmean(figure.column(column)) - net) < 3.0

    benchmark(compute_figure, "hitrate", grid)
