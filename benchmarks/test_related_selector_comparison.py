"""Section 5 experiment: NET/LEI versus the other published selectors.

"All three techniques profile more branches in the hope of better
identifying a hot trace.  Unfortunately, careful selection of traces
does not address the problems of separation and duplication."  This
bench runs Mojo, BOA and Wiggins/Redstone next to the paper's four
configurations and shows that LEI (and combined LEI) keep the locality
lead regardless of how carefully the comparators pick their traces.
"""

from statistics import fmean

from repro.config import SystemConfig
from repro.system.simulator import simulate
from repro.workloads import benchmark_names, build_benchmark

SELECTORS = ("net", "mojo", "boa", "wiggins", "lei", "combined-lei")


def run_comparison(scale, seed=1):
    totals = {
        s: {"transitions": 0, "expansion": 0, "hit": [], "cached_insts": 0}
        for s in SELECTORS
    }
    for bench in benchmark_names():
        program = build_benchmark(bench, scale=scale)
        for selector in SELECTORS:
            result = simulate(program, selector, SystemConfig(), seed=seed)
            totals[selector]["transitions"] += result.region_transitions
            totals[selector]["expansion"] += result.code_expansion
            totals[selector]["hit"].append(result.hit_rate)
            totals[selector]["cached_insts"] += result.stats.cache_instructions
    for cells in totals.values():
        # Raw transition counts are incomparable across hit rates (a
        # selector that caches little transitions little); normalize to
        # transitions per thousand cache-executed instructions.
        cells["tr_per_kinst"] = 1000 * cells["transitions"] / max(1, cells["cached_insts"])
    return totals


def test_related_selector_comparison(ablation_scale, benchmark, record_text):
    totals = benchmark.pedantic(
        run_comparison, args=(ablation_scale,), rounds=1, iterations=1
    )

    lines = ["Section 5: suite totals for every implemented selector"]
    lines.append(f"{'selector':14s} {'transitions':>12s} {'tr/kinst':>9s} "
                 f"{'expansion':>10s} {'mean hit%':>10s}")
    for selector, cells in totals.items():
        lines.append(f"{selector:14s} {cells['transitions']:12d} "
                     f"{cells['tr_per_kinst']:9.2f} {cells['expansion']:10d} "
                     f"{100 * fmean(cells['hit']):10.2f}")
    lines.append("Paper (5): more profiling does not fix separation or "
                 "duplication; only cycle-spanning (LEI) and multi-path "
                 "regions (combination) do.")
    record_text("section5-related-selectors", "\n".join(lines))

    lei_rate = totals["lei"]["tr_per_kinst"]
    lei_hit = fmean(totals["lei"]["hit"])
    for other in ("net", "mojo", "boa", "wiggins"):
        # LEI matches or beats every comparator's transition density
        # (5% tolerance: BOA can tie by simply caching much less)...
        assert lei_rate <= totals[other]["tr_per_kinst"] * 1.05, other
        # ...while covering at least as much execution as any of them.
        assert lei_hit >= fmean(totals[other]["hit"]) - 0.01, other
    assert totals["combined-lei"]["tr_per_kinst"] <= lei_rate
    # And nobody else approaches combined LEI's locality.
    assert totals["combined-lei"]["transitions"] == min(
        cells["transitions"] for cells in totals.values()
    )
