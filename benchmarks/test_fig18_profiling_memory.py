"""Figure 18: observed-trace memory versus estimated cache size."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig18_profiling_memory(grid, benchmark, record_figure):
    figure = compute_figure("fig18", grid)
    record_figure(figure)

    cnet = [v for v in figure.column("combined_net_pct") if v is not None]
    clei = [v for v in figure.column("combined_lei_pct") if v is not None]
    # Paper: 6% (NET) / 13% (LEI) of the cache estimate.  Our synthetic
    # programs cache orders of magnitude fewer bytes while the compact
    # traces stay the same size, so the absolute percentage is higher;
    # the shape under test is the paper's consistent ordering: LEI needs
    # more because its traces are longer and observed for longer.
    assert all(v > 0 for v in cnet + clei)
    assert fmean(clei) > fmean(cnet)
    majority = sum(1 for a, b in zip(cnet, clei) if b >= a)
    assert majority >= len(cnet) - 3

    benchmark(compute_figure, "fig18", grid)
