"""Shared fixtures for the figure-regeneration benchmark suite.

The expensive part — simulating the full (benchmark x selector) grid —
runs once per session in the ``grid`` fixture; every figure bench then
computes its table from the shared grid, records it for the terminal
summary, and times only its own computation.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale for the main grid (default 1.0).
* ``REPRO_BENCH_SEED``  — execution seed (default 1).
* ``REPRO_BENCH_WORKERS`` — processes for the grid (default 1).
* ``REPRO_BENCH_STORE`` — content-addressed result-store directory
  (default ``benchmarks/.store``, gitignored; set to ``off`` to
  disable).  Grid cells already simulated by a previous session — same
  parameters, same commit — are served from disk, so reruns are
  near-instant.

Every recorded table is also written to ``benchmarks/results/<id>.txt``
so the regenerated figures survive the terminal scroll.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import pytest

from repro.config import SystemConfig
from repro.experiments.render import figure_to_text, grid_banner
from repro.experiments.runner import run_grid
from repro.store import ResultStore

RESULTS_DIR = Path(__file__).parent / "results"

_RECORDED: list = []


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_store() -> Optional[ResultStore]:
    root = os.environ.get(
        "REPRO_BENCH_STORE", str(Path(__file__).parent / ".store")
    )
    if root.lower() in ("", "0", "off", "none"):
        return None
    return ResultStore(root)


@pytest.fixture(scope="session")
def grid():
    """The full-suite grid at the paper's thresholds."""
    return run_grid(scale=bench_scale(), seed=bench_seed(),
                    workers=bench_workers(), store=bench_store())


@pytest.fixture(scope="session")
def ablation_scale():
    """Reduced scale for benches that must simulate extra grids."""
    return min(bench_scale(), 0.3)


@pytest.fixture(scope="session")
def ablation_config_grid(ablation_scale):
    """Factory: run a plain NET/LEI(+combined) grid under a custom config."""
    cache = {}

    def run(config: SystemConfig, selectors=("net", "lei", "combined-net",
                                              "combined-lei")):
        key = (config, tuple(selectors))
        if key not in cache:
            # The store key covers the config, so ablation grids share
            # the same store as the main grid without collisions.
            cache[key] = run_grid(
                scale=ablation_scale, seed=bench_seed(),
                config=config, selectors=selectors, store=bench_store(),
            )
        return cache[key]

    return run


@pytest.fixture
def record_figure():
    """Record a rendered table for the end-of-run summary and on disk."""

    def record(figure) -> str:
        text = figure_to_text(figure)
        _RECORDED.append((figure.figure_id, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{figure.figure_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return text

    return record


@pytest.fixture
def record_text():
    """Record a free-form text block (for ablation benches)."""

    def record(name: str, text: str) -> None:
        _RECORDED.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RECORDED:
        return
    terminalreporter.section("reproduced paper figures")
    terminalreporter.write_line(grid_banner(bench_scale(), bench_seed()))
    terminalreporter.write_line("")
    for _, text in _RECORDED:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
