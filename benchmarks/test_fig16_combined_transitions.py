"""Figure 16: reduction in region transitions under trace combination."""

from statistics import fmean

from repro.experiments.figures import compute_figure


def test_fig16_combined_transitions(grid, benchmark, record_figure):
    figure = compute_figure("fig16", grid)
    record_figure(figure)

    cnet = [v for v in figure.column("combined_net_over_net") if v is not None]
    clei = [v for v in figure.column("combined_lei_over_lei") if v is not None]
    # Paper: combined NET 0.85, combined LEI 0.64 — combination helps
    # both and helps LEI more.
    assert fmean(cnet) < 1.0
    assert fmean(clei) < 1.0
    assert fmean(clei) < fmean(cnet)
    # The paper tolerates one small regression (vortex +1% under NET);
    # allow isolated small regressions but no blow-ups.
    assert max(cnet + clei) < 1.25

    benchmark(compute_figure, "fig16", grid)
