"""Throughput microbenchmarks for the hot kernels of the framework.

These time the pieces a user pays for when scaling the simulation up:
the execution engine, the full system simulator under each selector,
the Figure 14 compact encode/decode, and the Figure 15 marking pass.
"""

import pytest

from repro.config import SystemConfig
from repro.execution.engine import ExecutionEngine
from repro.selection.compact import CompactTrace
from repro.selection.marking import mark_rejoining_paths
from repro.selection.region_cfg import build_observed_cfg
from repro.system.simulator import Simulator
from repro.workloads import build_benchmark
from repro.workloads.micro import build_micro


@pytest.fixture(scope="module")
def small_program():
    return build_benchmark("mcf", scale=0.05)


def test_engine_throughput(benchmark, small_program):
    def run():
        engine = ExecutionEngine(small_program, seed=1)
        return sum(1 for _ in engine.run())

    steps = benchmark(run)
    assert steps > 10_000


@pytest.mark.parametrize("selector", ["net", "lei", "combined-net", "combined-lei"])
def test_simulator_throughput(benchmark, small_program, selector):
    def run():
        simulator = Simulator(small_program, selector, SystemConfig())
        return simulator.run(ExecutionEngine(small_program, seed=1).run())

    result = benchmark(run)
    assert result.total_instructions_executed > 0


def test_cache_walk_linked_chain(benchmark):
    # The trace-linking stress kernel: a long chain of tiny hot loops
    # whose steady state is almost entirely region->region transfers,
    # so the timing is dominated by the `cache_walk` phase and the
    # link-patched dispatch path (see docs/performance.md).
    program = build_micro("linked_chain", iterations=400)

    def run():
        simulator = Simulator(program, "net", SystemConfig())
        return simulator.run_program(seed=1)

    result = benchmark(run)
    assert result.stats.region_transitions > 1000


def test_compact_trace_round_trip(benchmark, small_program):
    # A realistic trace: the first 24 blocks the program actually
    # executes (an executed path is contiguous by construction).
    from itertools import islice

    path = [
        step.block
        for step in islice(ExecutionEngine(small_program, seed=1).run(), 24)
    ]

    def round_trip():
        compact = CompactTrace.encode(path)
        return compact.decode(small_program)

    decoded = benchmark(round_trip)
    assert decoded == path


def test_mark_rejoining_paths_speed(benchmark, small_program):
    # Build an observed CFG resembling a profiling window's output.
    paths = []
    for start in range(10):
        path = [small_program.entry]
        while len(path) < 20 + start and path[-1].fallthrough is not None:
            path.append(path[-1].fallthrough)
        paths.append(path)
    cfg = build_observed_cfg(small_program.entry, paths)
    marked = {small_program.entry, paths[0][-1]}

    result = benchmark(mark_rejoining_paths, cfg, marked)
    assert small_program.entry in result.marked
